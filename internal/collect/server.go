// Package collect implements EnergyDx's trace-collection tier: phones
// upload their event and utilization traces to a backend server "when
// the smartphone is in charge with WiFi, which is a common practice to
// upload traces without impacting the normal usage of smartphone"
// (paper §II-B). Uploads are newline-delimited JSON bundles over TCP,
// acknowledged per bundle (acks echo the bundle's content key) so a
// client can resume after a dropped connection without duplicating
// data.
//
// The ingestion path assumes nothing about upload quality: every line
// is strictly validated (decode, content-key integrity, structural
// trace invariants, size limits) and rejected lines are kept in a
// quarantine — excluded from analysis but available for diagnosis —
// so one corrupt upload never poisons a corpus or takes down a
// connection handler.
//
// Privacy: the client scrubs bundles before they leave the phone, and
// the server scrubs again on receipt (defense in depth) — the backend
// never stores raw user identifiers.
package collect

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/trace/binenc"
)

// Ingestion-path metrics on the process registry, aggregated across
// every Server in the process. Per-instance numbers (the ones the
// reconciliation invariant accepted+duplicated+quarantined == received
// is checked against) come from Server.Stats. The quarantine ring size
// and skipped-trace gauges make state that used to be visible only
// post-hoc in files observable live.
var (
	mSrvAccepted    = obs.Default.Counter("collect_bundles_accepted_total", "bundles validated and stored")
	mSrvDuplicated  = obs.Default.Counter("collect_bundles_duplicated_total", "re-uploads deduplicated by content key")
	mSrvQuarantined = obs.Default.Counter("collect_bundles_quarantined_total", "wire lines rejected into quarantine")
	mSrvBytes       = obs.Default.Counter("collect_bytes_ingested_total", "wire bytes received on the ingest path")
	mSrvConns       = obs.Default.Counter("collect_connections_total", "client connections accepted")
	gSrvConnsOpen   = obs.Default.Gauge("collect_connections_open", "client connections currently open")
	hSrvIngest      = obs.Default.Histogram("collect_ingest_seconds", "per-line validate+store latency", nil)
)

const (
	// ackOK acknowledges a validated-and-stored (or deduplicated) bundle.
	ackOK = "OK"
	// ackErr precedes a rejection; the line is "ERR <key> <reason>".
	ackErr = "ERR"
	// ackUnknownKey stands in for the key when a line cannot be decoded.
	ackUnknownKey = "?"
)

// ackErrPrefix is the textual prefix of a rejection ack.
const ackErrPrefix = ackErr + " "

// helloBinary is the protocol hello a client sends (and a server
// echoes) to negotiate the binary columnar codec on a connection. Text
// clients never send it — a JSON bundle line starts with '{' — and an
// old server treats it as one undecodable line and rejects it, which
// the client reads as "speak text", so both fallback directions work
// with no version handshake beyond this single line. Acks stay
// newline-delimited text in both modes.
const helloBinary = "EDX1 bin"

// helloLine is the hello as it appears on the wire.
const helloLine = helloBinary + "\n"

// Limits bounds what one client may ingest. The zero value of any
// field means its default.
type Limits struct {
	// MaxLineBytes bounds one serialized bundle (default 16 MiB).
	MaxLineBytes int
	// MaxRecords bounds the event records in one bundle (default 1M).
	MaxRecords int
	// MaxSamples bounds the utilization samples in one bundle (default 1M).
	MaxSamples int
	// MaxBundlesPerConn bounds the bundles one connection may send
	// (default 10000); beyond it, the connection is closed.
	MaxBundlesPerConn int
	// MaxBadLinesPerConn bounds the rejected lines one connection may
	// produce before it is closed (default 100) — a client that only
	// sends garbage does not get to keep the handler busy forever.
	MaxBadLinesPerConn int
}

// DefaultLimits returns the production defaults.
func DefaultLimits() Limits {
	return Limits{
		MaxLineBytes:       16 << 20,
		MaxRecords:         1 << 20,
		MaxSamples:         1 << 20,
		MaxBundlesPerConn:  10000,
		MaxBadLinesPerConn: 100,
	}
}

// withDefaults replaces zero fields with their defaults.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxLineBytes <= 0 {
		l.MaxLineBytes = d.MaxLineBytes
	}
	if l.MaxRecords <= 0 {
		l.MaxRecords = d.MaxRecords
	}
	if l.MaxSamples <= 0 {
		l.MaxSamples = d.MaxSamples
	}
	if l.MaxBundlesPerConn <= 0 {
		l.MaxBundlesPerConn = d.MaxBundlesPerConn
	}
	if l.MaxBadLinesPerConn <= 0 {
		l.MaxBadLinesPerConn = d.MaxBadLinesPerConn
	}
	return l
}

// maxQuarantineKept bounds the quarantine entries kept in memory; the
// durable store keeps all of them.
const maxQuarantineKept = 256

// QuarantineEntry is one rejected wire line, kept for diagnosis and
// excluded from analysis.
type QuarantineEntry struct {
	// Key is the bundle's stamped content key when the line decoded far
	// enough to read one, else empty.
	Key string `json:"key,omitempty"`
	// Reason is the rejection reason.
	Reason string `json:"reason"`
	// Line is the offending wire line as received.
	Line []byte `json:"line"`
}

// ServerStats is a snapshot of one server's ingestion counters. Every
// wire line the server reads lands in exactly one of Accepted,
// Duplicated or Quarantined, so
//
//	Accepted + Duplicated + Quarantined == lines received
//
// holds at any quiescent point — the reconciliation invariant the
// fault-injection integration tests pin.
type ServerStats struct {
	// Accepted is the count of bundles validated and stored.
	Accepted int64
	// Duplicated is the count of re-uploads recognized by content key
	// and acknowledged without storing again.
	Duplicated int64
	// Quarantined is the count of rejected wire lines. Torn store
	// lines skipped at reload are excluded (they were never received on
	// this server's wire); QuarantineCount includes them.
	Quarantined int64
	// BytesIngested is the wire bytes offered to ingestion.
	BytesIngested int64
	// ConnsTotal is the count of accepted client connections.
	ConnsTotal int64
	// ConnsOpen is the number of connections currently being handled.
	ConnsOpen int64
}

// Server receives and stores trace bundles.
type Server struct {
	ln       net.Listener
	store    Store // optional durable store
	limits   Limits
	injector *faults.Injector         // optional chaos injector on received lines
	tracer   *obs.Tracer              // optional span sink for the ingest path
	hook     func(*trace.TraceBundle) // optional accepted-bundle hook

	// Lock-free ingestion counters (see ServerStats).
	accepted, duplicated, quarantined atomic.Int64
	bytesIngested                     atomic.Int64
	connsTotal, connsOpen             atomic.Int64

	mu         sync.Mutex
	byApp      map[string][]*trace.TraceBundle
	dupes      map[string]struct{}  // upload-key dedup across reconnects
	inflight   map[string]*inflight // keys being persisted right now
	quarantine []QuarantineEntry    // most recent maxQuarantineKept rejects
	quarCount  int                  // total rejects, including rotated-out ones
	closed     bool
	handler    sync.WaitGroup
}

// inflight tracks one dedup key whose store append is in progress on
// some handler goroutine. Concurrent uploads of the same key wait for
// the leader's verdict instead of double-appending — the dedup check
// alone cannot cover the window because the append happens outside the
// state lock (it must: group commit wants many handlers inside
// store.Append at once).
type inflight struct {
	done chan struct{}
}

// ServerOption configures a server.
type ServerOption func(*Server)

// WithFileStore persists accepted bundles to a durable store and, at
// startup, reloads (and deduplicates against) everything the store
// already holds — so a restarted server continues where it stopped.
func WithFileStore(store *FileStore) ServerOption {
	return WithStore(store)
}

// WithStore is WithFileStore for any Store implementation — in
// particular SegStore, the group-committing segmented log that the
// fleet-scale deployment uses.
func WithStore(store Store) ServerOption {
	return func(s *Server) { s.store = store }
}

// WithLimits overrides the ingestion limits; zero fields keep their
// defaults.
func WithLimits(l Limits) ServerOption {
	return func(s *Server) { s.limits = l }
}

// WithServerFaults injects faults into received lines before ingestion
// (chaos testing via collectd's -faults flag): lines may be corrupted,
// truncated or duplicated, connections dropped, and ingestion delayed.
func WithServerFaults(in *faults.Injector) ServerOption {
	return func(s *Server) { s.injector = in }
}

// WithIngestHook calls fn for every bundle accepted into the corpus —
// after validation, scrubbing, dedup and durable persistence, so fn
// only ever sees bundles that analysis would. Re-uploads recognized by
// content key do not fire it. fn runs on the connection handler
// goroutine outside the server's state lock; it must be
// concurrency-safe and should return quickly (hand heavy work, like
// triggering re-analysis, to a debounced consumer such as
// serve.Service). The bundle is the stored instance: treat it as
// read-only.
func WithIngestHook(fn func(*trace.TraceBundle)) ServerOption {
	return func(s *Server) { s.hook = fn }
}

// WithServerTracer records one span per ingested line ("server.ingest",
// with "server.quarantine" children for rejects) on tr, exportable as a
// JSONL trace. Production servers may leave it nil; the ingest-latency
// histogram on the metrics registry is always populated.
func WithServerTracer(tr *obs.Tracer) ServerOption {
	return func(s *Server) { s.tracer = tr }
}

// NewServer starts a collection server on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listen: %w", err)
	}
	s := &Server{
		ln:       ln,
		limits:   DefaultLimits(),
		byApp:    make(map[string][]*trace.TraceBundle),
		dupes:    make(map[string]struct{}),
		inflight: make(map[string]*inflight),
	}
	for _, o := range opts {
		o(s)
	}
	s.limits = s.limits.withDefaults()
	if s.store != nil {
		persisted, skipped, err := s.store.Load()
		if err != nil {
			ln.Close()
			return nil, err
		}
		for appID, bundles := range persisted {
			for _, b := range bundles {
				s.byApp[appID] = append(s.byApp[appID], b)
				s.dupes[dedupKey(b)] = struct{}{}
			}
		}
		// Torn trailing lines (crash mid-append) were never acked, so
		// dropping them is safe; record them for diagnosis.
		s.quarCount += skipped
	}
	// Live quarantine visibility: the ring and its total used to be
	// discoverable only post-hoc in quarantine/rejected.jsonl; these
	// gauges read the newest server's state at scrape time (one server
	// per process in production).
	obs.Default.GaugeFunc("collect_quarantine_kept",
		"quarantined lines currently held in the in-memory ring",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.quarantine))
		})
	obs.Default.GaugeFunc("collect_quarantine_count",
		"total lines rejected into quarantine, including rotated-out and reload-skipped ones",
		func() float64 { return float64(s.QuarantineCount()) })
	s.handler.Add(1)
	go s.acceptLoop()
	return s, nil
}

// dedupKey identifies a bundle across re-uploads and restarts: the
// stamped content key when present, else the app/user/trace triple
// (legacy uploaders without integrity keys).
func dedupKey(b *trace.TraceBundle) string {
	if b.Key != "" {
		return b.Key
	}
	return b.Event.AppID + "/" + b.Event.UserID + "/" + b.Event.TraceID
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.handler.Wait()
	return err
}

// acceptLoop owns the listener; one goroutine per connection, all joined
// through the WaitGroup so Close is clean.
func (s *Server) acceptLoop() {
	defer s.handler.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.handler.Add(1)
		go func() {
			defer s.handler.Done()
			s.handleConn(conn)
		}()
	}
}

// Stats returns a snapshot of the server's ingestion counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Accepted:      s.accepted.Load(),
		Duplicated:    s.duplicated.Load(),
		Quarantined:   s.quarantined.Load(),
		BytesIngested: s.bytesIngested.Load(),
		ConnsTotal:    s.connsTotal.Load(),
		ConnsOpen:     s.connsOpen.Load(),
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	s.connsTotal.Add(1)
	mSrvConns.Inc()
	s.connsOpen.Add(1)
	gSrvConnsOpen.Inc()
	defer func() {
		s.connsOpen.Add(-1)
		gSrvConnsOpen.Dec()
	}()
	br := bufio.NewReaderSize(conn, 64*1024)
	w := bufio.NewWriter(conn)
	// Codec negotiation: a binary client leads with the hello line; a
	// text client's first bytes are a JSON bundle ('{'), which cannot
	// collide with it. Real bundle lines are far longer than the hello,
	// so peeking this much never stalls a live upload.
	if peek, err := br.Peek(len(helloLine)); err == nil && string(peek) == helloLine {
		br.Discard(len(helloLine))
		s.bytesIngested.Add(int64(len(helloLine)))
		mSrvBytes.Add(int64(len(helloLine)))
		if _, err := w.WriteString(helloLine); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		s.handleBinary(br, w)
		return
	}
	s.handleText(br, w)
}

// handleBinary is the frame loop of a negotiated binary connection:
// length-prefixed CRC-checked binenc frames in, text acks out.
func (s *Server) handleBinary(br *bufio.Reader, w *bufio.Writer) {
	bundles, bad := 0, 0
	for {
		payload, err := binenc.ReadFrame(br, s.limits.MaxLineBytes)
		if err != nil {
			if err == io.EOF {
				return // clean end of upload
			}
			// A torn or corrupt frame cannot be resynced past (the next
			// length prefix is untrustworthy), so like an over-long text
			// line this closes the connection; the client retries.
			s.quarantineLine(nil, "", fmt.Errorf("binary framing: %v", err), nil)
			fmt.Fprintf(w, "%s %s binary framing: %v\n", ackErr, ackUnknownKey, err)
			w.Flush()
			return
		}
		bundles++
		if bundles > s.limits.MaxBundlesPerConn {
			fmt.Fprintf(w, "%s %s connection bundle limit (%d) exceeded\n",
				ackErr, ackUnknownKey, s.limits.MaxBundlesPerConn)
			w.Flush()
			return
		}
		payloads := [][]byte{payload}
		if s.injector != nil {
			if d := s.injector.Delay(); d > 0 {
				time.Sleep(d)
			}
			var drop bool
			payloads, drop = s.injector.Apply(payload)
			if drop {
				return // injected connection cut; the client retries
			}
		}
		for _, p := range payloads {
			s.bytesIngested.Add(int64(len(p)) + binenc.FrameOverhead)
			mSrvBytes.Add(int64(len(p)) + binenc.FrameOverhead)
			var sp *obs.Span
			if s.tracer != nil {
				sp = s.tracer.Start("server.ingest")
			}
			start := time.Now()
			key, stored, dup, err := s.ingestBinary(p)
			hSrvIngest.Observe(time.Since(start).Seconds())
			if !s.ackIngest(w, p, key, stored, dup, err, sp, &bad) {
				return
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// handleText is the newline-delimited JSON loop (the Fig-5 wire format).
func (s *Server) handleText(br *bufio.Reader, w *bufio.Writer) {
	sc := bufio.NewScanner(br)
	// The scanner's max token size is the larger of the cap argument and
	// the initial buffer, so the initial buffer must not exceed the
	// configured line limit.
	sc.Buffer(make([]byte, 0, min(64*1024, s.limits.MaxLineBytes)), s.limits.MaxLineBytes)
	bundles, bad := 0, 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		bundles++
		if bundles > s.limits.MaxBundlesPerConn {
			fmt.Fprintf(w, "%s %s connection bundle limit (%d) exceeded\n",
				ackErr, ackUnknownKey, s.limits.MaxBundlesPerConn)
			w.Flush()
			return
		}
		lines := [][]byte{line}
		if s.injector != nil {
			if d := s.injector.Delay(); d > 0 {
				time.Sleep(d)
			}
			var drop bool
			lines, drop = s.injector.Apply(line)
			if drop {
				return // injected connection cut; the client retries
			}
		}
		for _, ln := range lines {
			s.bytesIngested.Add(int64(len(ln)))
			mSrvBytes.Add(int64(len(ln)))
			var sp *obs.Span
			if s.tracer != nil {
				sp = s.tracer.Start("server.ingest")
			}
			start := time.Now()
			key, stored, dup, err := s.ingest(ln)
			hSrvIngest.Observe(time.Since(start).Seconds())
			if !s.ackIngest(w, ln, key, stored, dup, err, sp, &bad) {
				return
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
	// A line over MaxLineBytes surfaces here as bufio.ErrTooLong. The
	// scanner cannot resync mid-line, so the connection is closed; the
	// oversize upload is quarantined by size class (the line itself is
	// too big to keep).
	if err := sc.Err(); err != nil {
		s.quarantineLine(nil, "", fmt.Errorf("line exceeds %d bytes: %w", s.limits.MaxLineBytes, err), nil)
		fmt.Fprintf(w, "%s %s line exceeds %d byte limit\n", ackErr, ackUnknownKey, s.limits.MaxLineBytes)
		w.Flush()
	}
}

func keyOrUnknown(key string) string {
	if key == "" {
		return ackUnknownKey
	}
	return key
}

// ackIngest translates one ingest verdict into counters, quarantine and
// a (buffered, not yet flushed) ack line. It returns false when the
// connection has exhausted its bad-line budget and must close.
func (s *Server) ackIngest(w *bufio.Writer, raw []byte, key string, stored *trace.TraceBundle, dup bool, err error, sp *obs.Span, bad *int) bool {
	defer func() {
		if sp != nil {
			sp.End()
		}
	}()
	if err != nil {
		*bad++
		s.quarantineLine(raw, key, err, sp)
		fmt.Fprintf(w, "%s %s %v\n", ackErr, keyOrUnknown(key), err)
		if *bad > s.limits.MaxBadLinesPerConn {
			w.Flush()
			return false
		}
		return true
	}
	if dup {
		s.duplicated.Add(1)
		mSrvDuplicated.Inc()
	} else {
		s.accepted.Add(1)
		mSrvAccepted.Inc()
		if s.hook != nil {
			s.hook(stored)
		}
	}
	fmt.Fprintf(w, "%s %s\n", ackOK, keyOrUnknown(key))
	return true
}

// ingest validates, scrubs and stores one serialized text bundle,
// returning the bundle's stamped key when one could be decoded, the
// stored (scrubbed) bundle on acceptance, and whether the bundle was a
// content-key duplicate of an already stored one.
func (s *Server) ingest(line []byte) (key string, stored *trace.TraceBundle, dup bool, err error) {
	b, err := trace.DecodeBundle(bytes.NewReader(line))
	if err != nil {
		return "", nil, false, fmt.Errorf("decode: %v", err)
	}
	return s.ingestBundle(b)
}

// ingestBinary is ingest for a binary frame payload.
func (s *Server) ingestBinary(payload []byte) (key string, stored *trace.TraceBundle, dup bool, err error) {
	b, err := binenc.DecodeBundle(payload)
	if err != nil {
		return "", nil, false, fmt.Errorf("decode: %v", err)
	}
	// The binary codec is a pure serialization layer and will carry
	// NaN/Inf utilization bit patterns (JSON structurally cannot), but
	// the content-key hash goes through JSON — reject non-finite floats
	// here so a hostile frame cannot reach it.
	for i := range b.Util.Samples {
		for _, v := range b.Util.Samples[i].Util {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return b.Key, nil, false, errors.New("utilization not finite")
			}
		}
	}
	return s.ingestBundle(b)
}

// ingestBundle validates, scrubs and stores one decoded bundle. The
// store append runs OUTSIDE the state lock: with a group-committing
// store many handler goroutines must be inside Append at once for
// batching to exist at all. Exactly-once across that window is kept by
// the inflight map — the first uploader of a key becomes its persist
// leader, concurrent uploads of the same key wait for the leader's
// verdict, and the ack is only ever sent after durability.
func (s *Server) ingestBundle(b *trace.TraceBundle) (key string, stored *trace.TraceBundle, dup bool, err error) {
	key = b.Key
	// Integrity before anything else: a line altered in flight must not
	// reach the store even if it still parses.
	if err := trace.VerifyContentKey(b); err != nil {
		return key, nil, false, fmt.Errorf("integrity: %v", err)
	}
	if b.Event.AppID == "" {
		return key, nil, false, errors.New("bundle has no app id")
	}
	if n := len(b.Event.Records); n > s.limits.MaxRecords {
		return key, nil, false, fmt.Errorf("event trace has %d records, limit %d", n, s.limits.MaxRecords)
	}
	if n := len(b.Util.Samples); n > s.limits.MaxSamples {
		return key, nil, false, fmt.Errorf("utilization trace has %d samples, limit %d", n, s.limits.MaxSamples)
	}
	if err := b.Event.Validate(); err != nil {
		return key, nil, false, fmt.Errorf("event trace: %v", err)
	}
	if err := b.Util.Validate(); err != nil {
		return key, nil, false, fmt.Errorf("utilization trace: %v", err)
	}
	scrubbed := trace.ScrubBundle(b)
	dk := dedupKey(scrubbed)

	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return key, nil, false, errors.New("server shutting down")
		}
		if _, seen := s.dupes[dk]; seen {
			s.mu.Unlock()
			return key, nil, true, nil // idempotent: re-uploads after a lost ack are fine
		}
		leader, busy := s.inflight[dk]
		if !busy {
			break
		}
		// Another connection is persisting this exact key right now.
		// Wait for its verdict: if it succeeds we are a duplicate; if
		// it fails we take over as the new leader.
		s.mu.Unlock()
		<-leader.done
		s.mu.Lock()
	}
	fl := &inflight{done: make(chan struct{})}
	s.inflight[dk] = fl
	s.mu.Unlock()

	// Persist before acknowledging: an acked bundle survives a crash; a
	// failed write is reported so the phone retries. Off-lock, so
	// concurrent handlers share the store's group commit.
	var aerr error
	if s.store != nil {
		aerr = s.store.Append(scrubbed)
	}

	s.mu.Lock()
	delete(s.inflight, dk)
	if aerr == nil {
		s.dupes[dk] = struct{}{}
		s.byApp[scrubbed.Event.AppID] = append(s.byApp[scrubbed.Event.AppID], scrubbed)
	}
	close(fl.done)
	s.mu.Unlock()
	if aerr != nil {
		return key, nil, false, aerr
	}
	return key, scrubbed, false, nil
}

// quarantineLine records a rejected wire line: bounded in memory,
// complete in the durable store when one is attached. parent, when
// non-nil, is the ingest span the rejection belongs under.
func (s *Server) quarantineLine(line []byte, key string, cause error, parent *obs.Span) {
	s.quarantined.Add(1)
	mSrvQuarantined.Inc()
	if parent != nil {
		defer parent.Child("server.quarantine").End()
	}
	entry := QuarantineEntry{
		Key:    key,
		Reason: cause.Error(),
		Line:   append([]byte(nil), line...),
	}
	s.mu.Lock()
	s.quarCount++
	s.quarantine = append(s.quarantine, entry)
	if len(s.quarantine) > maxQuarantineKept {
		s.quarantine = s.quarantine[len(s.quarantine)-maxQuarantineKept:]
	}
	store := s.store
	s.mu.Unlock()
	if store != nil {
		// Best-effort: quarantine persistence failing must not take the
		// handler down with it.
		_ = store.AppendQuarantine(entry)
	}
}

// Quarantine returns the most recent quarantined lines (a copy).
func (s *Server) Quarantine() []QuarantineEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QuarantineEntry, len(s.quarantine))
	copy(out, s.quarantine)
	return out
}

// QuarantineCount returns how many lines have been rejected in total.
func (s *Server) QuarantineCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarCount
}

// Bundles returns the stored bundles for one app (a copy of the slice).
func (s *Server) Bundles(appID string) []*trace.TraceBundle {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.byApp[appID]
	out := make([]*trace.TraceBundle, len(src))
	copy(out, src)
	return out
}

// Count returns the total number of stored bundles.
func (s *Server) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, bs := range s.byApp {
		n += len(bs)
	}
	return n
}

// Apps returns the app IDs with stored traces.
func (s *Server) Apps() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	apps := make([]string, 0, len(s.byApp))
	for id := range s.byApp {
		apps = append(apps, id)
	}
	return apps
}
