package collect

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/trace/binenc"
)

// Router metrics: how the fronting tier spreads and degrades.
var (
	mRtBundles   = obs.Default.Counter("collect_router_bundles_total", "bundles routed to a shard")
	mRtUnrouted  = obs.Default.Counter("collect_router_unrouted_total", "lines/frames with no readable app id, routed to shard 0 for quarantine")
	mRtUpstreams = obs.Default.Counter("collect_router_upstream_conns_total", "upstream shard connections dialed")
	mRtErrors    = obs.Default.Counter("collect_router_upstream_errors_total", "client connections dropped on an upstream failure")
)

// ShardOf maps an app ID onto one of n shards (FNV-1a 32). It is the
// single partitioning function of the sharded deployment: the ingest
// router, the per-shard stores and the serve-layer read fan-out must
// all agree on it, so an app's whole corpus — and its incremental
// analyzer — lives on exactly one shard.
func ShardOf(appID string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(appID))
	return int(h.Sum32() % uint32(n))
}

// ShardedServer fronts N in-process collection shards with a thin
// routing listener. Each shard is a full *Server — own store, own
// dedup state, own ingest hook — and owns every app whose ID hashes to
// it. The router terminates the upload protocol only far enough to
// read each bundle's app ID (binenc.FrameHeader on a binary frame, a
// two-field JSON probe on a text line), forwards the raw bytes to the
// owning shard over a per-connection upstream, and relays the shard's
// ack verbatim.
//
// Exactly-once survives routing because the router adds no state: the
// bundle's content key travels with the bytes, and the owning shard's
// dedup map (and durable store) is the same one a retry after a router
// crash or an upstream failure lands on. A line whose app ID cannot be
// read is deterministically routed to shard 0, whose validator
// quarantines it — rejects stay observable without the router growing
// its own quarantine.
type ShardedServer struct {
	ln     net.Listener
	shards []*Server
	limits Limits

	mu      sync.Mutex
	closed  bool
	handler sync.WaitGroup
}

// NewShardedServer starts n shards on loopback ports and a router on
// addr. shardOpts, when non-nil, supplies each shard's options (store,
// ingest hook, limits, faults) by shard index. With n == 1 the shard
// still sits behind the router, so behavior differs from a bare Server
// only by one forwarding hop.
func NewShardedServer(addr string, n int, shardOpts func(shard int) []ServerOption) (*ShardedServer, error) {
	if n < 1 {
		return nil, fmt.Errorf("collect: shard count %d < 1", n)
	}
	ss := &ShardedServer{}
	for i := 0; i < n; i++ {
		var opts []ServerOption
		if shardOpts != nil {
			opts = shardOpts(i)
		}
		srv, err := NewServer("127.0.0.1:0", opts...)
		if err != nil {
			for _, s := range ss.shards {
				s.Close()
			}
			return nil, fmt.Errorf("collect: shard %d: %w", i, err)
		}
		ss.shards = append(ss.shards, srv)
	}
	ss.limits = ss.shards[0].limits
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		for _, s := range ss.shards {
			s.Close()
		}
		return nil, fmt.Errorf("collect: router listen: %w", err)
	}
	ss.ln = ln
	ss.handler.Add(1)
	go ss.acceptLoop()
	return ss, nil
}

// Addr returns the router's listen address — the one clients dial.
func (ss *ShardedServer) Addr() string { return ss.ln.Addr().String() }

// Shards returns the shard servers, indexed by ShardOf.
func (ss *ShardedServer) Shards() []*Server { return ss.shards }

// ShardFor returns the shard owning an app's corpus.
func (ss *ShardedServer) ShardFor(appID string) *Server {
	return ss.shards[ShardOf(appID, len(ss.shards))]
}

// Close stops the router, waits for in-flight routed connections, then
// closes every shard.
func (ss *ShardedServer) Close() error {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return nil
	}
	ss.closed = true
	ss.mu.Unlock()
	err := ss.ln.Close()
	ss.handler.Wait()
	for _, s := range ss.shards {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Stats sums the shards' ingestion counters. The reconciliation
// invariant (accepted + duplicated + quarantined == lines received)
// holds fleet-wide because it holds per shard.
func (ss *ShardedServer) Stats() ServerStats {
	var out ServerStats
	for _, s := range ss.shards {
		st := s.Stats()
		out.Accepted += st.Accepted
		out.Duplicated += st.Duplicated
		out.Quarantined += st.Quarantined
		out.BytesIngested += st.BytesIngested
		out.ConnsTotal += st.ConnsTotal
		out.ConnsOpen += st.ConnsOpen
	}
	return out
}

// Bundles returns the stored bundles for one app, read from its shard.
func (ss *ShardedServer) Bundles(appID string) []*trace.TraceBundle {
	return ss.ShardFor(appID).Bundles(appID)
}

// Count returns the total stored bundles across all shards.
func (ss *ShardedServer) Count() int {
	n := 0
	for _, s := range ss.shards {
		n += s.Count()
	}
	return n
}

// Apps returns the app IDs with stored traces across all shards.
func (ss *ShardedServer) Apps() []string {
	var out []string
	for _, s := range ss.shards {
		out = append(out, s.Apps()...)
	}
	sort.Strings(out)
	return out
}

// QuarantineCount sums the shards' rejected-line totals.
func (ss *ShardedServer) QuarantineCount() int {
	n := 0
	for _, s := range ss.shards {
		n += s.QuarantineCount()
	}
	return n
}

func (ss *ShardedServer) acceptLoop() {
	defer ss.handler.Done()
	for {
		conn, err := ss.ln.Accept()
		if err != nil {
			return
		}
		ss.handler.Add(1)
		go func() {
			defer ss.handler.Done()
			ss.route(conn)
		}()
	}
}

// upstream is one lazily-dialed router→shard connection. The router
// opens at most one per shard per client connection and forwards
// bundles synchronously (send, await shard ack, relay), so per-client
// ack order is the shard ack order and MaxBundlesPerConn on the shard
// bounds what one routed client can send, same as an unsharded server.
type upstream struct {
	conn net.Conn
	br   *bufio.Reader
	w    *bufio.Writer
}

func (u *upstream) close() {
	if u != nil {
		u.conn.Close()
	}
}

// dialShard opens the upstream to one shard, negotiating the binary
// codec upstream when the client connection negotiated it downstream —
// the router never transcodes.
func (ss *ShardedServer) dialShard(i int, binary bool) (*upstream, error) {
	conn, err := net.Dial("tcp", ss.shards[i].Addr())
	if err != nil {
		return nil, err
	}
	mRtUpstreams.Inc()
	u := &upstream{conn: conn, br: bufio.NewReaderSize(conn, 64*1024), w: bufio.NewWriter(conn)}
	if binary {
		if _, err := u.w.WriteString(helloLine); err != nil {
			conn.Close()
			return nil, err
		}
		if err := u.w.Flush(); err != nil {
			conn.Close()
			return nil, err
		}
		echo, err := u.br.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, err
		}
		if echo != helloLine {
			conn.Close()
			return nil, errors.New("shard did not negotiate binary codec")
		}
	}
	return u, nil
}

// route handles one client connection: negotiate the codec exactly
// like a Server would, then forward bundle-by-bundle to owning shards.
func (ss *ShardedServer) route(conn net.Conn) {
	defer conn.Close()
	ups := make([]*upstream, len(ss.shards))
	defer func() {
		for _, u := range ups {
			u.close()
		}
	}()
	get := func(i int, binary bool) (*upstream, error) {
		if ups[i] == nil {
			u, err := ss.dialShard(i, binary)
			if err != nil {
				mRtErrors.Inc()
				return nil, err
			}
			ups[i] = u
		}
		return ups[i], nil
	}

	br := bufio.NewReaderSize(conn, 64*1024)
	w := bufio.NewWriter(conn)
	if peek, err := br.Peek(len(helloLine)); err == nil && string(peek) == helloLine {
		br.Discard(len(helloLine))
		if _, err := w.WriteString(helloLine); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		ss.routeBinary(br, w, get)
		return
	}
	ss.routeText(br, w, get)
}

// forward sends one already-framed message to a shard and relays the
// shard's one-line ack back to the client. Any failure in the middle
// closes the client connection: the client's retry re-offers the
// bundle with its content key intact and the shard dedups it, so a
// half-forwarded bundle can never double-ingest.
func forward(up *upstream, w *bufio.Writer, msg []byte) error {
	if _, err := up.w.Write(msg); err != nil {
		mRtErrors.Inc()
		return err
	}
	if err := up.w.Flush(); err != nil {
		mRtErrors.Inc()
		return err
	}
	ack, err := up.br.ReadString('\n')
	if err != nil {
		mRtErrors.Inc()
		return err
	}
	if _, err := w.WriteString(ack); err != nil {
		return err
	}
	return w.Flush()
}

func (ss *ShardedServer) routeBinary(br *bufio.Reader, w *bufio.Writer, get func(int, bool) (*upstream, error)) {
	for {
		payload, err := binenc.ReadFrame(br, ss.limits.MaxLineBytes)
		if err != nil {
			if err != io.EOF {
				// Same contract as Server.handleBinary: a torn frame
				// cannot be resynced past, so reject and close.
				fmt.Fprintf(w, "%s %s binary framing: %v\n", ackErr, ackUnknownKey, err)
				w.Flush()
			}
			return
		}
		shard := 0
		if hdr, herr := binenc.FrameHeader(payload); herr == nil {
			shard = ShardOf(hdr.AppID, len(ss.shards))
		} else {
			mRtUnrouted.Inc() // shard 0's decoder will quarantine it
		}
		up, err := get(shard, true)
		if err != nil {
			return
		}
		mRtBundles.Inc()
		if err := forward(up, w, binenc.AppendFrame(nil, payload)); err != nil {
			return
		}
	}
}

func (ss *ShardedServer) routeText(br *bufio.Reader, w *bufio.Writer, get func(int, bool) (*upstream, error)) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, min(64*1024, ss.limits.MaxLineBytes)), ss.limits.MaxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		// Routing probe: only the app ID is decoded here; full
		// validation stays on the owning shard.
		var probe struct {
			Event struct {
				AppID string `json:"appId"`
			} `json:"event"`
		}
		shard := 0
		if err := json.Unmarshal(line, &probe); err == nil && probe.Event.AppID != "" {
			shard = ShardOf(probe.Event.AppID, len(ss.shards))
		} else {
			mRtUnrouted.Inc()
		}
		up, err := get(shard, false)
		if err != nil {
			return
		}
		mRtBundles.Inc()
		msg := append(append(make([]byte, 0, len(line)+1), line...), '\n')
		if err := forward(up, w, msg); err != nil {
			return
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(w, "%s %s line exceeds %d byte limit\n", ackErr, ackUnknownKey, ss.limits.MaxLineBytes)
		w.Flush()
	}
}
