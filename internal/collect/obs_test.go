package collect

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestMetricsReconcileUnderFaults pins the ingestion accounting
// invariant under chaos: every wire line a client writes is counted
// exactly once on the server as accepted, duplicated or quarantined, so
//
//	sum(client LinesSent) == Accepted + Duplicated + Quarantined
//
// holds exactly once the uploads converge. The fault mix is truncate +
// duplicate + drop — all three preserve line framing. (A corrupt
// bit-flip can turn a byte into '\n' and split one sent line into two
// received ones, which is why corruption is exercised in the soak test
// with a floor assertion instead of exact equality here.)
func TestMetricsReconcileUnderFaults(t *testing.T) {
	const (
		nClients       = 4
		usersPerClient = 6
	)
	app, err := apps.ByAppID("opengps")
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig(app, 99)
	wcfg.Users = nClients * usersPerClient
	wcfg.ImpactedFraction = 0.25
	wcfg.Scrub = false // clients scrub on upload
	corpus, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fcfg := faults.Config{
		TruncateProb:  0.12,
		DuplicateProb: 0.12,
		DropProb:      0.15,
	}
	clients := make([]*Client, nClients)
	injectors := make([]*faults.Injector, nClients)
	uploadErrs := make([]error, nClients)
	var wg sync.WaitGroup
	for ci := 0; ci < nClients; ci++ {
		fcfg.Seed = int64(ci+1) * 2654435761
		in, err := faults.New(fcfg)
		if err != nil {
			t.Fatal(err)
		}
		injectors[ci] = in
		clients[ci] = NewClient(srv.Addr(),
			WithFaults(in),
			WithJitterSeed(int64(ci)),
			WithRetry(60, time.Millisecond, 4*time.Millisecond),
			WithTimeout(500*time.Millisecond))
		chunk := corpus.Bundles[ci*usersPerClient : (ci+1)*usersPerClient]
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			uploadErrs[ci] = clients[ci].Upload(PhoneState{Charging: true, OnWiFi: true}, chunk)
		}(ci)
	}
	wg.Wait()
	for ci, err := range uploadErrs {
		if err != nil {
			t.Fatalf("client %d did not converge: %v", ci, err)
		}
	}

	var total faults.Stats
	for _, in := range injectors {
		s := in.Stats()
		total.Truncated += s.Truncated
		total.Duplicated += s.Duplicated
		total.Dropped += s.Dropped
	}
	t.Logf("injected: truncated=%d duplicated=%d dropped=%d", total.Truncated, total.Duplicated, total.Dropped)
	if total.Truncated == 0 || total.Duplicated == 0 || total.Dropped == 0 {
		t.Fatalf("fault schedule did not exercise every kind: %+v", total)
	}

	// Connections are all closed, so Close only stops the listener; it
	// quiesces the counters for the reconciliation read.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	var sent, acked int64
	for _, c := range clients {
		cs := c.Stats()
		sent += cs.LinesSent
		acked += cs.Acked
	}
	if got := st.Accepted + st.Duplicated + st.Quarantined; got != sent {
		t.Errorf("accepted %d + duplicated %d + quarantined %d = %d, want %d lines sent",
			st.Accepted, st.Duplicated, st.Quarantined, got, sent)
	}
	// Exactly-once storage: every bundle accepted once, re-sends and
	// injected duplicates all land in Duplicated.
	if st.Accepted != int64(len(corpus.Bundles)) {
		t.Errorf("accepted = %d, want %d (exactly-once)", st.Accepted, len(corpus.Bundles))
	}
	if srv.Count() != len(corpus.Bundles) {
		t.Errorf("server stores %d bundles, want %d", srv.Count(), len(corpus.Bundles))
	}
	if acked < int64(len(corpus.Bundles)) {
		t.Errorf("clients acked %d bundles, want at least %d", acked, len(corpus.Bundles))
	}
	// Without a durable store there are no reload-skipped lines, so the
	// wire counter and the quarantine total agree exactly.
	if st.Quarantined != int64(srv.QuarantineCount()) {
		t.Errorf("quarantined counter %d != quarantine count %d", st.Quarantined, srv.QuarantineCount())
	}
	if st.ConnsOpen != 0 {
		t.Errorf("connections still open after Close: %d", st.ConnsOpen)
	}
	if st.ConnsTotal < nClients {
		t.Errorf("connections total = %d, want at least %d", st.ConnsTotal, nClients)
	}
	if st.BytesIngested == 0 {
		t.Error("no bytes counted on the ingest path")
	}
}

// TestDebugEndpointsFlipDuringShutdown drives the live debug surface
// the way a load balancer sees it: /metrics exposes the ingestion
// counters of a running server, and /healthz plus /readyz flip to 503
// the moment the drain begins.
func TestDebugEndpointsFlipDuringShutdown(t *testing.T) {
	health := obs.NewHealth()
	debug, err := obs.ServeDebug("127.0.0.1:0", obs.DebugMux(obs.Default, health))
	if err != nil {
		t.Fatal(err)
	}
	defer debug.Close()

	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	health.SetReady(true)

	app, err := apps.ByAppID("k9mail")
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig(app, 5)
	wcfg.Users = 3
	wcfg.Scrub = false
	corpus, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(srv.Addr())
	if err := client.Upload(PhoneState{Charging: true, OnWiFi: true}, corpus.Bundles); err != nil {
		t.Fatal(err)
	}

	if code, _ := httpGet(t, debug.Addr(), "/healthz"); code != http.StatusOK {
		t.Errorf("serving /healthz = %d, want 200", code)
	}
	if code, _ := httpGet(t, debug.Addr(), "/readyz"); code != http.StatusOK {
		t.Errorf("serving /readyz = %d, want 200", code)
	}

	_, body := httpGet(t, debug.Addr(), "/metrics")
	for _, name := range []string{
		"collect_bundles_accepted_total",
		"collect_bundles_duplicated_total",
		"collect_bundles_quarantined_total",
		"collect_bytes_ingested_total",
		"collect_connections_total",
		"collect_connections_open",
		"collect_quarantine_kept",
		"collect_client_lines_sent_total",
	} {
		if !hasMetric(body, name) {
			t.Errorf("/metrics missing sample for %s", name)
		}
	}
	// The process registry is cumulative across tests, so assert floors
	// against this test's own traffic rather than exact values.
	if v := metricValue(t, body, "collect_bundles_accepted_total"); v < float64(len(corpus.Bundles)) {
		t.Errorf("collect_bundles_accepted_total = %v, want at least %d", v, len(corpus.Bundles))
	}

	_, jbody := httpGet(t, debug.Addr(), "/metrics?format=json")
	var obj map[string]any
	if err := json.Unmarshal([]byte(jbody), &obj); err != nil {
		t.Fatalf("/metrics?format=json does not parse: %v", err)
	}
	if _, ok := obj["collect_ingest_seconds"]; !ok {
		t.Error("JSON metrics missing collect_ingest_seconds histogram")
	}

	// Drain begins: both probes must flip before the listener closes.
	health.ShuttingDown()
	if code, _ := httpGet(t, debug.Addr(), "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz = %d, want 503", code)
	}
	if code, _ := httpGet(t, debug.Addr(), "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz = %d, want 503", code)
	}
}

// httpGet fetches a debug path and returns status code and body.
func httpGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// hasMetric reports whether the Prometheus text body has a sample line
// for the metric (histograms expose name_count etc.).
func hasMetric(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"_count ") ||
			strings.HasPrefix(line, name+"_bucket{") {
			return true
		}
	}
	return false
}

// metricValue extracts a scalar sample from the Prometheus text body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: bad sample %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
