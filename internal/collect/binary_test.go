package collect

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collect/seglog"
	"repro/internal/faults"
	"repro/internal/trace"
)

func charging() PhoneState { return PhoneState{Charging: true, OnWiFi: true} }

// TestBinaryUploadRoundTrip: a WithBinary client negotiates the codec
// and the server stores the same scrubbed bundles a text upload would.
func TestBinaryUploadRoundTrip(t *testing.T) {
	s := startServer(t)
	c := NewClient(s.Addr(), WithBinary())
	if err := c.Upload(charging(), []*trace.TraceBundle{
		bundle("k9mail", "alice@example.com", "t1"),
		bundle("k9mail", "bob@example.com", "t2"),
	}); err != nil {
		t.Fatal(err)
	}
	if c.textOnly.Load() {
		t.Fatal("client fell back to text against a binary-capable server")
	}
	got := s.Bundles("k9mail")
	if len(got) != 2 {
		t.Fatalf("stored %d bundles, want 2", len(got))
	}
	for _, b := range got {
		if strings.Contains(b.Event.UserID, "@") {
			t.Errorf("raw user ID stored: %q", b.Event.UserID)
		}
		if err := trace.VerifyContentKey(b); err != nil {
			t.Errorf("stored bundle fails integrity: %v", err)
		}
	}
	if st := s.Stats(); st.Accepted != 2 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBinaryAndTextBundlesDeduplicate: the same bundle uploaded once
// per codec is stored exactly once — the content key is codec-blind.
func TestBinaryAndTextBundlesDeduplicate(t *testing.T) {
	s := startServer(t)
	b := bundle("k9mail", "u", "t1")
	if err := NewClient(s.Addr()).Upload(charging(), []*trace.TraceBundle{b}); err != nil {
		t.Fatal(err)
	}
	if err := NewClient(s.Addr(), WithBinary()).Upload(charging(), []*trace.TraceBundle{b}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Accepted != 1 || st.Duplicated != 1 {
		t.Fatalf("stats = %+v, want 1 accepted + 1 duplicated", st)
	}
}

// fakeTextOnlyServer speaks the pre-binary protocol: every line is
// either acked OK (valid JSON bundle) or rejected — including the
// binary hello, which it has never heard of.
func fakeTextOnlyServer(t *testing.T) (addr string, gotBundles *atomic.Int32, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int32
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
				for sc.Scan() {
					line := sc.Text()
					if !strings.HasPrefix(line, "{") {
						fmt.Fprintf(conn, "ERR ? decode: not json\n")
						continue
					}
					b, err := trace.DecodeBundle(strings.NewReader(line + "\n"))
					if err != nil {
						fmt.Fprintf(conn, "ERR ? decode: %v\n", err)
						continue
					}
					n.Add(1)
					fmt.Fprintf(conn, "OK %s\n", b.Key)
				}
			}()
		}
	}()
	return ln.Addr().String(), &n, func() { ln.Close(); wg.Wait() }
}

// TestBinaryClientFallsBackToText: against a pre-binary server the
// hello is rejected, the client finishes the upload in text on the same
// connection, and never offers the hello again.
func TestBinaryClientFallsBackToText(t *testing.T) {
	addr, got, stop := fakeTextOnlyServer(t)
	defer stop()
	c := NewClient(addr, WithBinary())
	if err := c.Upload(charging(), []*trace.TraceBundle{
		bundle("k9mail", "u1", "t1"),
		bundle("k9mail", "u2", "t2"),
	}); err != nil {
		t.Fatal(err)
	}
	if !c.textOnly.Load() {
		t.Fatal("client did not remember the server is text-only")
	}
	if got.Load() != 2 {
		t.Fatalf("old server ingested %d bundles, want 2", got.Load())
	}
	// Second upload must not send the hello again (it would cost one
	// quarantined line per connection forever).
	if err := c.Upload(charging(), []*trace.TraceBundle{bundle("k9mail", "u3", "t3")}); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 3 {
		t.Fatalf("old server ingested %d bundles, want 3", got.Load())
	}
}

// TestTextClientAgainstBinaryServer pins the other fallback direction
// explicitly (the rest of the suite exercises it implicitly).
func TestTextClientAgainstBinaryServer(t *testing.T) {
	s := startServer(t)
	if err := NewClient(s.Addr()).Upload(charging(), []*trace.TraceBundle{bundle("k9mail", "u", "t1")}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Accepted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBinaryUploadWithSegStore: the full fleet path — binary wire codec
// into the group-committing segmented store — survives a server
// restart with dedup intact.
func TestBinaryUploadWithSegStore(t *testing.T) {
	dir := t.TempDir()
	store, err := NewSegStore(dir, seglog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer("127.0.0.1:0", WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	bundles := []*trace.TraceBundle{
		bundle("k9mail", "u1", "t1"),
		bundle("k9mail", "u2", "t2"),
		bundle("opengps", "u3", "t1"),
	}
	if err := NewClient(s.Addr(), WithBinary()).Upload(charging(), bundles); err != nil {
		t.Fatal(err)
	}
	if st := store.Log().Stats(); st.Appends != 3 {
		t.Fatalf("log appends = %d", st.Appends)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := NewSegStore(dir, seglog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewServer("127.0.0.1:0", WithStore(store2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s2.Close(); store2.Close() }()
	if got := s2.Count(); got != 3 {
		t.Fatalf("restarted server reloaded %d bundles, want 3", got)
	}
	// Re-upload is a pure duplicate against the reloaded store.
	if err := NewClient(s2.Addr(), WithBinary()).Upload(charging(), bundles); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Accepted != 0 || st.Duplicated != 3 {
		t.Fatalf("stats after re-upload = %+v", st)
	}
	if st := store2.Log().Stats(); st.LiveRecords != 3 {
		t.Fatalf("log live records = %d", st.LiveRecords)
	}
}

// TestBinaryUploadFaultInjected: corruption, duplication and drops on
// the binary wire still yield exactly-once ingest, same as text.
func TestBinaryUploadFaultInjected(t *testing.T) {
	dir := t.TempDir()
	store, err := NewSegStore(dir, seglog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer("127.0.0.1:0", WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Close(); store.Close() }()
	inj, err := faults.New(faults.Config{
		CorruptProb:   0.15,
		DuplicateProb: 0.2,
		DropProb:      0.1,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var bundles []*trace.TraceBundle
	for i := 0; i < 40; i++ {
		bundles = append(bundles, bundle("k9mail", fmt.Sprintf("u%d", i), fmt.Sprintf("t%d", i)))
	}
	c := NewClient(s.Addr(), WithBinary(), WithFaults(inj),
		WithRetry(60, time.Millisecond, 4*time.Millisecond), WithJitterSeed(1))
	if err := c.Upload(charging(), bundles); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Bundles("k9mail")); got != 40 {
		t.Fatalf("stored %d bundles, want exactly 40", got)
	}
	st := s.Stats()
	if st.Accepted != 40 {
		t.Fatalf("accepted = %d, want exactly 40 (duplicated=%d quarantined=%d)",
			st.Accepted, st.Duplicated, st.Quarantined)
	}
}

// TestQuarantinePersistsInSegStore: rejected lines survive a restart
// through the segment log's quarantine records.
func TestQuarantinePersistsInSegStore(t *testing.T) {
	dir := t.TempDir()
	store, err := NewSegStore(dir, seglog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := store.AppendQuarantine(QuarantineEntry{
			Reason: fmt.Sprintf("reason-%d", i),
			Line:   []byte(fmt.Sprintf("line-%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	store.Close()
	store2, err := NewSegStore(dir, seglog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	got, err := store2.LoadQuarantine()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("quarantine entries = %d, want 3", len(got))
	}
	for i, e := range got {
		if e.Reason != fmt.Sprintf("reason-%d", i) {
			t.Fatalf("entry %d out of order: %+v", i, e)
		}
	}
}

// TestSanitizeAppIDNoCollision is the regression test for the store
// filename collision: "a/b" and "a_b" used to share one file.
func TestSanitizeAppIDNoCollision(t *testing.T) {
	cases := [][2]string{
		{"a/b", "a_b"},
		{"a.b", "a/b"},
		{"x y", "x_y"},
		{"приложение", "__________"},
	}
	for _, c := range cases {
		if sanitizeAppID(c[0]) == sanitizeAppID(c[1]) {
			t.Errorf("sanitizeAppID collision: %q and %q -> %q", c[0], c[1], sanitizeAppID(c[0]))
		}
	}
	// Clean IDs keep their historical filenames (store compatibility).
	for _, clean := range []string{"k9mail", "com.example.app", "a_b", "A-1.2_3"} {
		if got := sanitizeAppID(clean); got != clean {
			t.Errorf("sanitizeAppID(%q) = %q, want unchanged", clean, got)
		}
	}
}

// TestFileStoreCollisionSeparatesApps drives the collision end to end:
// two colliding app IDs land in distinct files and reload distinctly.
func TestFileStoreCollisionSeparatesApps(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"a/b", "a_b"} {
		b := bundle(app, "u", "t1")
		b.Key = trace.ContentKey(b)
		if err := store.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	store.Close()
	store2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	loaded, _, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded["a/b"]) != 1 || len(loaded["a_b"]) != 1 {
		t.Fatalf("loaded = %d/%d bundles for a/b / a_b, want 1/1", len(loaded["a/b"]), len(loaded["a_b"]))
	}
}
