package collect

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/trace"
)

// Store is the durable persistence contract the server writes through:
// every Append/AppendQuarantine must be durable (fsynced) before it
// returns, because the server acknowledges the upload on return. Two
// implementations exist: FileStore (one JSONL file per app, one fsync
// per bundle) and SegStore (segmented binary log with group commit —
// the fleet-scale default).
type Store interface {
	// Append durably persists one accepted bundle.
	Append(b *trace.TraceBundle) error
	// Load reads every persisted bundle back, keyed by app ID, plus the
	// count of torn/undecodable records skipped.
	Load() (map[string][]*trace.TraceBundle, int, error)
	// AppendQuarantine durably records one rejected wire line.
	AppendQuarantine(entry QuarantineEntry) error
	// LoadQuarantine reads back every quarantined line.
	LoadQuarantine() ([]QuarantineEntry, error)
	// Close releases the store's file handles.
	Close() error
}

// FileStore persists accepted bundles as they arrive: one append-only
// JSONL file per app under a directory. Each write is flushed before
// the upload is acknowledged, so an acknowledged bundle survives a
// server crash; on restart the server reloads the directory and resumes
// deduplicating against it.
type FileStore struct {
	dir string

	mu         sync.Mutex
	files      map[string]*os.File
	quarantine *os.File // lazily opened quarantine append handle
}

// NewFileStore opens (creating if needed) a store directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("collect: store dir: %w", err)
	}
	return &FileStore{dir: dir, files: make(map[string]*os.File)}, nil
}

// Append durably appends one bundle to its app's file.
func (s *FileStore) Append(b *trace.TraceBundle) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.file(b.Event.AppID)
	if err != nil {
		return err
	}
	if err := trace.EncodeBundle(f, b); err != nil {
		return fmt.Errorf("collect: store append: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("collect: store sync: %w", err)
	}
	return nil
}

// file returns (opening if needed) the append handle for one app.
// Callers hold s.mu.
func (s *FileStore) file(appID string) (*os.File, error) {
	if f, ok := s.files[appID]; ok {
		return f, nil
	}
	path := filepath.Join(s.dir, sanitizeAppID(appID)+".jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("collect: store open: %w", err)
	}
	s.files[appID] = f
	return f, nil
}

// Load reads every persisted bundle back, keyed by app ID. Undecodable
// lines — e.g. a torn trailing line left by a crash mid-append — are
// skipped and counted rather than failing the whole store: a torn line
// was never acknowledged, so dropping it only makes the phone re-upload
// that bundle. The quarantine subdirectory is not part of the corpus
// and is never loaded here.
func (s *FileStore) Load() (map[string][]*trace.TraceBundle, int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("collect: store load: %w", err)
	}
	out := make(map[string][]*trace.TraceBundle)
	skipped := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		f, err := os.Open(filepath.Join(s.dir, e.Name()))
		if err != nil {
			return nil, skipped, fmt.Errorf("collect: store load: %w", err)
		}
		err = trace.ScanBundlesLenient(f,
			func(b *trace.TraceBundle) error {
				out[b.Event.AppID] = append(out[b.Event.AppID], b)
				return nil
			},
			func(bad trace.BadBundleLine) error {
				skipped++
				return nil
			})
		f.Close()
		if err != nil {
			return nil, skipped, fmt.Errorf("collect: store load %s: %w", e.Name(), err)
		}
	}
	return out, skipped, nil
}

// quarantineDir is the store subdirectory holding rejected lines. It is
// excluded from Load, so quarantined data can never re-enter analysis.
const quarantineDir = "quarantine"

// quarantineFile is the JSONL file of QuarantineEntry records.
const quarantineFile = "rejected.jsonl"

// AppendQuarantine durably appends one rejected line to the quarantine
// file for later diagnosis.
func (s *FileStore) AppendQuarantine(entry QuarantineEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quarantine == nil {
		dir := filepath.Join(s.dir, quarantineDir)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("collect: quarantine dir: %w", err)
		}
		f, err := os.OpenFile(filepath.Join(dir, quarantineFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("collect: quarantine open: %w", err)
		}
		s.quarantine = f
	}
	if err := json.NewEncoder(s.quarantine).Encode(entry); err != nil {
		return fmt.Errorf("collect: quarantine append: %w", err)
	}
	if err := s.quarantine.Sync(); err != nil {
		return fmt.Errorf("collect: quarantine sync: %w", err)
	}
	return nil
}

// LoadQuarantine reads back every quarantined line, for diagnosis
// tooling. A store with no quarantine returns an empty slice.
func (s *FileStore) LoadQuarantine() ([]QuarantineEntry, error) {
	f, err := os.Open(filepath.Join(s.dir, quarantineDir, quarantineFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("collect: quarantine load: %w", err)
	}
	defer f.Close()
	var out []QuarantineEntry
	dec := json.NewDecoder(f)
	for {
		var e QuarantineEntry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, fmt.Errorf("collect: quarantine load: %w", err)
		}
		out = append(out, e)
	}
}

// Close releases the append handles.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for id, f := range s.files {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("collect: store close %s: %w", id, err)
		}
		delete(s.files, id)
	}
	if s.quarantine != nil {
		if err := s.quarantine.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("collect: store close quarantine: %w", err)
		}
		s.quarantine = nil
	}
	return firstErr
}

// sanitizeAppID keeps store file names path-safe. When sanitization has
// to change anything, a hash of the original ID is appended so two
// distinct app IDs can never collide onto one file (e.g. "a/b" and
// "a_b" both used to map to "a_b.jsonl", silently merging two apps'
// corpora). IDs that are already clean keep their exact historical
// name, so existing stores load unchanged.
func sanitizeAppID(appID string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, appID)
	if mapped == appID {
		return mapped
	}
	h := fnv.New64a()
	h.Write([]byte(appID))
	return fmt.Sprintf("%s-%016x", mapped, h.Sum64())
}
