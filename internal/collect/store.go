package collect

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/trace"
)

// FileStore persists accepted bundles as they arrive: one append-only
// JSONL file per app under a directory. Each write is flushed before
// the upload is acknowledged, so an acknowledged bundle survives a
// server crash; on restart the server reloads the directory and resumes
// deduplicating against it.
type FileStore struct {
	dir string

	mu    sync.Mutex
	files map[string]*os.File
}

// NewFileStore opens (creating if needed) a store directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("collect: store dir: %w", err)
	}
	return &FileStore{dir: dir, files: make(map[string]*os.File)}, nil
}

// Append durably appends one bundle to its app's file.
func (s *FileStore) Append(b *trace.TraceBundle) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.file(b.Event.AppID)
	if err != nil {
		return err
	}
	if err := trace.EncodeBundle(f, b); err != nil {
		return fmt.Errorf("collect: store append: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("collect: store sync: %w", err)
	}
	return nil
}

// file returns (opening if needed) the append handle for one app.
// Callers hold s.mu.
func (s *FileStore) file(appID string) (*os.File, error) {
	if f, ok := s.files[appID]; ok {
		return f, nil
	}
	path := filepath.Join(s.dir, sanitizeAppID(appID)+".jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("collect: store open: %w", err)
	}
	s.files[appID] = f
	return f, nil
}

// Load reads every persisted bundle back, keyed by app ID.
func (s *FileStore) Load() (map[string][]*trace.TraceBundle, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("collect: store load: %w", err)
	}
	out := make(map[string][]*trace.TraceBundle)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		f, err := os.Open(filepath.Join(s.dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("collect: store load: %w", err)
		}
		bundles, err := trace.ReadBundles(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("collect: store load %s: %w", e.Name(), err)
		}
		for _, b := range bundles {
			out[b.Event.AppID] = append(out[b.Event.AppID], b)
		}
	}
	return out, nil
}

// Close releases the append handles.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for id, f := range s.files {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("collect: store close %s: %w", id, err)
		}
		delete(s.files, id)
	}
	return firstErr
}

// sanitizeAppID keeps store file names path-safe.
func sanitizeAppID(appID string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, appID)
}
