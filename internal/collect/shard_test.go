package collect

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collect/seglog"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/trace"
)

func TestShardOf(t *testing.T) {
	apps := []string{"k9mail", "opengps", "wallabag", "tinfoil", "a/b", "a_b", ""}
	for _, app := range apps {
		if got := ShardOf(app, 1); got != 0 {
			t.Fatalf("ShardOf(%q, 1) = %d", app, got)
		}
		for _, n := range []int{2, 3, 7} {
			got := ShardOf(app, n)
			if got < 0 || got >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", app, n, got)
			}
			if again := ShardOf(app, n); again != got {
				t.Fatalf("ShardOf(%q, %d) unstable: %d then %d", app, n, got, again)
			}
		}
	}
	// The test apps must not all hash to one shard of 3, or the routing
	// tests below would not exercise cross-shard traffic.
	seen := map[int]bool{}
	for _, app := range []string{"k9mail", "opengps", "wallabag", "tinfoil"} {
		seen[ShardOf(app, 3)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("test apps all landed on one of 3 shards: %v", seen)
	}
}

// startSharded runs n shards behind a router, each with its own
// SegStore in a subdirectory of dir. The returned shutdown closes the
// fleet and its stores; it is idempotent and also runs at cleanup.
func startSharded(t *testing.T, dir string, n int, extra func(shard int) []ServerOption) (*ShardedServer, func()) {
	t.Helper()
	stores := make([]*SegStore, n)
	ss, err := NewShardedServer("127.0.0.1:0", n, func(i int) []ServerOption {
		store, err := NewSegStore(fmt.Sprintf("%s/shard-%d", dir, i), seglog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = store
		opts := []ServerOption{WithStore(store)}
		if extra != nil {
			opts = append(opts, extra(i)...)
		}
		return opts
	})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			ss.Close()
			for _, st := range stores {
				if st != nil {
					st.Close()
				}
			}
		})
	}
	t.Cleanup(shutdown)
	return ss, shutdown
}

// TestShardedRoutesByApp: every app's bundles land on exactly the shard
// ShardOf names, in both codecs, and the aggregate views line up.
func TestShardedRoutesByApp(t *testing.T) {
	ss, _ := startSharded(t, t.TempDir(), 3, nil)
	apps := []string{"k9mail", "opengps", "wallabag", "tinfoil"}
	var textBundles, binBundles []*trace.TraceBundle
	for i, app := range apps {
		textBundles = append(textBundles, bundle(app, fmt.Sprintf("ut%d", i), "t1"))
		binBundles = append(binBundles, bundle(app, fmt.Sprintf("ub%d", i), "t2"))
	}
	if err := NewClient(ss.Addr()).Upload(charging(), textBundles); err != nil {
		t.Fatal(err)
	}
	if err := NewClient(ss.Addr(), WithBinary()).Upload(charging(), binBundles); err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		owner := ShardOf(app, 3)
		for i, shard := range ss.Shards() {
			got := len(shard.Bundles(app))
			want := 0
			if i == owner {
				want = 2
			}
			if got != want {
				t.Errorf("app %s on shard %d: %d bundles, want %d", app, i, got, want)
			}
		}
		if got := len(ss.Bundles(app)); got != 2 {
			t.Errorf("aggregate Bundles(%s) = %d, want 2", app, got)
		}
	}
	if got := ss.Count(); got != 8 {
		t.Errorf("Count() = %d, want 8", got)
	}
	if got := ss.Apps(); len(got) != 4 {
		t.Errorf("Apps() = %v, want the 4 uploaded", got)
	}
	if st := ss.Stats(); st.Accepted != 8 || st.Quarantined != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestShardedGarbageQuarantined: an invalid bundle quarantines on the
// shard that owns its app; a line with no readable app ID routes
// deterministically to shard 0 and quarantines there. Either way the
// fleet-wide reconciliation invariant holds.
func TestShardedGarbageQuarantined(t *testing.T) {
	ss, _ := startSharded(t, t.TempDir(), 3, nil)
	// One attempt: a rejection must not be retried into N quarantine
	// entries for this count-exact test.
	c := NewClient(ss.Addr(), WithRetry(1, time.Millisecond, time.Millisecond))
	if err := c.Upload(charging(), []*trace.TraceBundle{bundle("k9mail", "u", "t1")}); err != nil {
		t.Fatal(err)
	}
	// Structurally broken event trace: routes by its appId, rejects on
	// the owning shard's validator.
	broken := bundle("opengps", "u", "t2")
	broken.Event.Records = broken.Event.Records[:1] // unbalanced
	var rej *RejectedError
	if err := c.Upload(charging(), []*trace.TraceBundle{broken}); !errors.As(err, &rej) {
		t.Fatalf("broken bundle: err = %v, want *RejectedError", err)
	}
	if qc := ss.Shards()[ShardOf("opengps", 3)].QuarantineCount(); qc != 1 {
		t.Fatalf("owning shard quarantined %d, want 1", qc)
	}
	// Raw garbage with no app ID at all: the router sends it to shard 0.
	before := ss.Shards()[0].QuarantineCount()
	conn, err := net.Dial("tcp", ss.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "not json at all\n"); err != nil {
		t.Fatal(err)
	}
	ack, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ack, ackErrPrefix) {
		t.Fatalf("garbage line acked %q, want ERR", ack)
	}
	if qc := ss.Shards()[0].QuarantineCount(); qc != before+1 {
		t.Fatalf("shard 0 quarantined %d, want %d (the unrouted line)", qc, before+1)
	}
	st := ss.Stats()
	if st.Accepted != 1 || st.Quarantined != 2 {
		t.Fatalf("stats = %+v, want 1 accepted + 2 quarantined", st)
	}
}

// TestShardedExactlyOnceUnderFaults is the acceptance test: a faulty
// binary upload through the router ingests exactly once per bundle,
// and the per-app reports from the sharded deployment are
// byte-identical to a single-shard run over the same upload set.
func TestShardedExactlyOnceUnderFaults(t *testing.T) {
	apps := []string{"k9mail", "opengps", "wallabag", "tinfoil"}
	var bundles []*trace.TraceBundle
	for i := 0; i < 40; i++ {
		bundles = append(bundles, bundle(apps[i%len(apps)], fmt.Sprintf("u%d", i), fmt.Sprintf("t%d", i)))
	}

	newSvc := func() *serve.Service {
		svc, err := serve.New(serve.Config{Analysis: core.DefaultConfig(), Debounce: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(svc.Close)
		return svc
	}

	// Sharded run: 3 shards behind the router, per-shard serving layer,
	// faults on the wire.
	shardSvcs := make([]*serve.Service, 3)
	for i := range shardSvcs {
		shardSvcs[i] = newSvc()
	}
	ss, _ := startSharded(t, t.TempDir(), 3, func(i int) []ServerOption {
		return []ServerOption{WithIngestHook(shardSvcs[i].Notify)}
	})
	inj, err := faults.New(faults.Config{CorruptProb: 0.15, DuplicateProb: 0.2, DropProb: 0.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(ss.Addr(), WithBinary(), WithFaults(inj),
		WithRetry(60, time.Millisecond, 4*time.Millisecond), WithJitterSeed(2))
	if err := c.Upload(charging(), bundles); err != nil {
		t.Fatal(err)
	}
	if st := ss.Stats(); st.Accepted != 40 {
		t.Fatalf("sharded accepted = %d, want exactly 40 (%+v)", st.Accepted, st)
	}
	for _, app := range apps {
		if got := len(ss.Bundles(app)); got != 10 {
			t.Fatalf("app %s stored %d bundles, want 10", app, got)
		}
	}

	// Baseline: one unsharded server, clean wire, same upload set.
	baseSvc := newSvc()
	base := startServer(t, WithIngestHook(baseSvc.Notify))
	if err := NewClient(base.Addr(), WithBinary()).Upload(charging(), bundles); err != nil {
		t.Fatal(err)
	}

	fan, err := serve.NewFanout(shardSvcs...)
	if err != nil {
		t.Fatal(err)
	}
	fan.Flush()
	baseSvc.Flush()
	for _, app := range apps {
		shardReport, _, ok := shardSvcs[ShardOf(app, 3)].AppReport(app)
		if !ok || shardReport == nil {
			t.Fatalf("no sharded report for %s", app)
		}
		baseReport, _, ok := baseSvc.AppReport(app)
		if !ok || baseReport == nil {
			t.Fatalf("no baseline report for %s", app)
		}
		got, err := json.Marshal(shardReport)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(baseReport)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("report for %s diverged between sharded and single-shard runs", app)
		}
	}
}

// TestShardedRestartResumesDedup: shards reload their own stores, so a
// full re-upload through a restarted router is all duplicates.
func TestShardedRestartResumesDedup(t *testing.T) {
	dir := t.TempDir()
	var bundles []*trace.TraceBundle
	apps := []string{"k9mail", "opengps", "wallabag"}
	for i := 0; i < 9; i++ {
		bundles = append(bundles, bundle(apps[i%3], fmt.Sprintf("u%d", i), "t1"))
	}

	ss, shutdown := startSharded(t, dir, 3, nil)
	if err := NewClient(ss.Addr(), WithBinary()).Upload(charging(), bundles); err != nil {
		t.Fatal(err)
	}
	shutdown()

	ss2, _ := startSharded(t, dir, 3, nil)
	if got := ss2.Count(); got != 9 {
		t.Fatalf("restarted fleet reloaded %d bundles, want 9", got)
	}
	if err := NewClient(ss2.Addr(), WithBinary()).Upload(charging(), bundles); err != nil {
		t.Fatal(err)
	}
	if st := ss2.Stats(); st.Accepted != 0 || st.Duplicated != 9 {
		t.Fatalf("stats after re-upload = %+v, want 9 duplicated", st)
	}
}
