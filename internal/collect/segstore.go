package collect

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/collect/seglog"
	"repro/internal/trace"
	"repro/internal/trace/binenc"
)

// SegStore is the fleet-scale Store: accepted bundles land as binenc
// payloads in a segmented append-only log (internal/collect/seglog),
// addressed by their dedup key. Appends are group-committed — many
// concurrent uploads share each fsync — which is what lets ingest
// throughput scale with connection count instead of being capped at
// one bundle per fsync latency like the per-app JSONL store.
// Quarantined lines ride in the same log as typed records, so one
// directory, one recovery path and one compactor cover everything.
type SegStore struct {
	log *seglog.Log
}

// NewSegStore opens (creating if needed) a segmented store in dir.
func NewSegStore(dir string, opts seglog.Options) (*SegStore, error) {
	l, err := seglog.Open(dir, opts)
	if err != nil {
		return nil, fmt.Errorf("collect: segstore: %w", err)
	}
	return &SegStore{log: l}, nil
}

// Log exposes the underlying segment log (stats, manual compaction).
func (s *SegStore) Log() *seglog.Log { return s.log }

// Append durably group-commits one bundle, keyed by its dedup key so a
// re-upload of the same content is idempotent on disk too.
func (s *SegStore) Append(b *trace.TraceBundle) error {
	payload, err := binenc.EncodeBundle(nil, b)
	if err != nil {
		return fmt.Errorf("collect: segstore encode: %w", err)
	}
	if err := s.log.AppendBundle(dedupKey(b), payload); err != nil {
		return fmt.Errorf("collect: segstore append: %w", err)
	}
	return nil
}

// Load replays every live bundle, keyed by app ID. Bundles whose
// payloads fail to decode (impossible without disk corruption that
// also beat the CRC) are skipped and counted like FileStore's torn
// lines.
func (s *SegStore) Load() (map[string][]*trace.TraceBundle, int, error) {
	out := make(map[string][]*trace.TraceBundle)
	skipped := 0
	err := s.log.Scan(func(typ byte, key string, body []byte) error {
		if typ != seglog.TypeBundle {
			return nil
		}
		b, err := binenc.DecodeBundle(body)
		if err != nil {
			skipped++
			return nil
		}
		out[b.Event.AppID] = append(out[b.Event.AppID], b)
		return nil
	})
	if err != nil {
		return nil, skipped, fmt.Errorf("collect: segstore load: %w", err)
	}
	return out, skipped, nil
}

// AppendQuarantine durably records one rejected line as a quarantine
// record in the same log.
func (s *SegStore) AppendQuarantine(entry QuarantineEntry) error {
	data, err := json.Marshal(entry)
	if err != nil {
		return fmt.Errorf("collect: segstore quarantine: %w", err)
	}
	if err := s.log.AppendQuarantine(data); err != nil {
		return fmt.Errorf("collect: segstore quarantine: %w", err)
	}
	return nil
}

// LoadQuarantine replays quarantine records in arrival order.
func (s *SegStore) LoadQuarantine() ([]QuarantineEntry, error) {
	type keyed struct {
		key   string
		entry QuarantineEntry
	}
	var rows []keyed
	err := s.log.Scan(func(typ byte, key string, body []byte) error {
		if typ != seglog.TypeQuarantine {
			return nil
		}
		var e QuarantineEntry
		if err := json.Unmarshal(body, &e); err != nil {
			return nil // unreadable quarantine record: nothing to diagnose
		}
		rows = append(rows, keyed{key: key, entry: e})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("collect: segstore quarantine load: %w", err)
	}
	// Scan yields replay order per segment; the log-assigned sequence
	// keys give the global arrival order.
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	out := make([]QuarantineEntry, len(rows))
	for i, r := range rows {
		out[i] = r.entry
	}
	return out, nil
}

// Close waits for the in-flight group commit and closes the log.
func (s *SegStore) Close() error { return s.log.Close() }
