package collect

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/trace"
)

func bundle(app, user, traceID string) *trace.TraceBundle {
	return &trace.TraceBundle{
		Event: trace.EventTrace{
			AppID: app, UserID: user, Device: "nexus6", TraceID: traceID,
			Records: []trace.Record{
				{TimestampMS: 1, Dir: trace.Enter, Key: trace.EventKey{Class: "L", Callback: "f"}},
				{TimestampMS: 5, Dir: trace.Exit, Key: trace.EventKey{Class: "L", Callback: "f"}},
			},
		},
		Util: trace.UtilizationTrace{
			AppID: app, PID: 42, PeriodMS: 500,
			Samples: []trace.UtilizationSample{{TimestampMS: 0}},
		},
	}
}

func startServer(t *testing.T, opts ...ServerOption) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

func TestUploadStoresScrubbedBundles(t *testing.T) {
	s := startServer(t)
	c := NewClient(s.Addr())
	err := c.Upload(PhoneState{Charging: true, OnWiFi: true}, []*trace.TraceBundle{
		bundle("k9mail", "alice@example.com", "t1"),
		bundle("k9mail", "bob@example.com", "t2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := s.Bundles("k9mail")
	if len(got) != 2 {
		t.Fatalf("stored %d bundles, want 2", len(got))
	}
	for _, b := range got {
		if b.Event.UserID == "alice@example.com" || b.Event.UserID == "bob@example.com" {
			t.Errorf("raw user ID stored: %q", b.Event.UserID)
		}
		if b.Util.PID != 0 {
			t.Errorf("PID stored: %d", b.Util.PID)
		}
	}
	if s.Count() != 2 {
		t.Errorf("count = %d", s.Count())
	}
	if apps := s.Apps(); len(apps) != 1 || apps[0] != "k9mail" {
		t.Errorf("apps = %v", apps)
	}
}

func TestUploadPolicyGating(t *testing.T) {
	s := startServer(t)
	c := NewClient(s.Addr())
	states := []PhoneState{
		{Charging: false, OnWiFi: false},
		{Charging: true, OnWiFi: false},
		{Charging: false, OnWiFi: true},
	}
	for _, st := range states {
		err := c.Upload(st, []*trace.TraceBundle{bundle("app", "u", "t")})
		if !errors.Is(err, ErrNotEligible) {
			t.Errorf("state %+v: err = %v, want ErrNotEligible", st, err)
		}
	}
	if s.Count() != 0 {
		t.Errorf("gated upload stored %d bundles", s.Count())
	}
}

func TestUploadEmptyIsNoop(t *testing.T) {
	s := startServer(t)
	c := NewClient(s.Addr())
	if err := c.Upload(PhoneState{Charging: true, OnWiFi: true}, nil); err != nil {
		t.Errorf("empty upload: %v", err)
	}
	_ = s
}

func TestServerRejectsInvalidBundles(t *testing.T) {
	s := startServer(t)
	c := NewClient(s.Addr())
	bad := bundle("", "u", "t") // no app id
	err := c.Upload(PhoneState{Charging: true, OnWiFi: true}, []*trace.TraceBundle{bad})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want *RejectedError", err)
	}
	if rej.Index != 0 || rej.Reason == "" {
		t.Errorf("rejection = %+v", rej)
	}

	// Structurally broken event trace.
	broken := bundle("app", "u", "t")
	broken.Event.Records = broken.Event.Records[:1] // unbalanced
	err = c.Upload(PhoneState{Charging: true, OnWiFi: true}, []*trace.TraceBundle{broken})
	if !errors.As(err, &rej) {
		t.Fatalf("unbalanced trace: err = %v", err)
	}
	if s.Count() != 0 {
		t.Error("invalid bundle stored")
	}
}

func TestReuploadIsIdempotent(t *testing.T) {
	s := startServer(t)
	c := NewClient(s.Addr())
	b := bundle("app", "u", "t1")
	st := PhoneState{Charging: true, OnWiFi: true}
	for i := 0; i < 3; i++ {
		if err := c.Upload(st, []*trace.TraceBundle{b}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count() != 1 {
		t.Errorf("re-uploads stored %d bundles, want 1", s.Count())
	}
}

func TestConcurrentUploaders(t *testing.T) {
	s := startServer(t)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for u := 0; u < 8; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			c := NewClient(s.Addr())
			var bs []*trace.TraceBundle
			for i := 0; i < 5; i++ {
				bs = append(bs, bundle("app", fmt.Sprintf("user%d", u), fmt.Sprintf("t%d", i)))
			}
			errs[u] = c.Upload(PhoneState{Charging: true, OnWiFi: true}, bs)
		}(u)
	}
	wg.Wait()
	for u, err := range errs {
		if err != nil {
			t.Errorf("uploader %d: %v", u, err)
		}
	}
	if s.Count() != 40 {
		t.Errorf("stored %d bundles, want 40", s.Count())
	}
}

func TestDialFailure(t *testing.T) {
	c := NewClient("127.0.0.1:1") // nothing listens on port 1
	err := c.Upload(PhoneState{Charging: true, OnWiFi: true},
		[]*trace.TraceBundle{bundle("app", "u", "t")})
	if err == nil {
		t.Error("dial to dead address succeeded")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
