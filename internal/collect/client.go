package collect

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/trace/binenc"
)

// Upload-path metrics on the process registry, aggregated across every
// client in the process; per-instance numbers come from Client.Stats.
var (
	mCliAttempts = obs.Default.Counter("collect_client_attempts_total", "connection attempts (first tries and retries)")
	mCliRetries  = obs.Default.Counter("collect_client_retries_total", "connection attempts beyond each upload's first")
	mCliSent     = obs.Default.Counter("collect_client_lines_sent_total", "wire lines written, including injected duplicates and resends")
	mCliAcked    = obs.Default.Counter("collect_client_bundles_acked_total", "bundles acknowledged OK by the server")
	mCliRejected = obs.Default.Counter("collect_client_bundles_rejected_total", "bundles rejected by the server with retries exhausted")
	hCliBackoff  = obs.Default.Histogram("collect_client_backoff_seconds", "sleep before each retry attempt", nil)
)

// PhoneState is the device condition the upload policy checks.
type PhoneState struct {
	// Charging reports whether the phone is on external power.
	Charging bool
	// OnWiFi reports whether the phone has an unmetered connection.
	OnWiFi bool
}

// Eligible implements the paper's upload policy: only while charging on
// WiFi, so collection never impacts normal phone usage.
func (s PhoneState) Eligible() bool { return s.Charging && s.OnWiFi }

// ErrNotEligible is returned when the phone state forbids uploading.
var ErrNotEligible = errors.New("collect: phone not charging on WiFi; upload deferred")

// RejectedError is returned when the server refuses a bundle and
// retries are exhausted.
type RejectedError struct {
	Index  int
	Reason string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("collect: bundle %d rejected: %s", e.Index, e.Reason)
}

// Client uploads trace bundles from a phone to the collection server.
// Transient failures (dial errors, timeouts, dropped connections,
// in-flight corruption rejected by the server) are retried with
// exponential backoff and jitter; every bundle is stamped with its
// content key before the first attempt, so retries are idempotent and
// the server stores each bundle exactly once no matter how many times
// parts of an upload are re-sent.
type Client struct {
	addr        string
	timeout     time.Duration
	maxAttempts int
	backoffBase time.Duration
	backoffMax  time.Duration
	dial        func(addr string, timeout time.Duration) (net.Conn, error)
	sleep       func(time.Duration)
	injector    *faults.Injector
	tracer      *obs.Tracer         // optional span sink for upload attempts
	ackObs      func(time.Duration) // optional per-bundle ack latency sink
	binary      bool                // offer the binary codec on each connection
	textOnly    atomic.Bool         // server declined the hello; stop offering

	// Lock-free upload counters (see ClientStats).
	attempts, linesSent, acked, rejected atomic.Int64
	backoffNanos                         atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand // backoff jitter
}

// ClientStats is a snapshot of one client's upload counters.
type ClientStats struct {
	// Attempts is the count of connection attempts across all uploads.
	Attempts int64
	// LinesSent is the count of wire lines written, including injected
	// duplicates and retried resends.
	LinesSent int64
	// Acked is the count of bundles acknowledged OK.
	Acked int64
	// Rejected is the count of bundles rejected with retries exhausted.
	Rejected int64
	// Backoff is the total time slept between retry attempts.
	Backoff time.Duration
}

// Stats returns a snapshot of the client's upload counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Attempts:  c.attempts.Load(),
		LinesSent: c.linesSent.Load(),
		Acked:     c.acked.Load(),
		Rejected:  c.rejected.Load(),
		Backoff:   time.Duration(c.backoffNanos.Load()),
	}
}

// ClientOption configures a client.
type ClientOption func(*Client)

// WithTimeout sets the per-request timeout: it bounds the dial and each
// bundle's send+ack round trip individually, so one slow bundle cannot
// consume the whole upload's budget.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithRetry sets the retry policy: at most maxAttempts connection
// attempts per upload, sleeping base<<attempt (capped at max, with up
// to 50% random jitter) between consecutive attempts.
func WithRetry(maxAttempts int, base, max time.Duration) ClientOption {
	return func(c *Client) {
		if maxAttempts > 0 {
			c.maxAttempts = maxAttempts
		}
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// WithJitterSeed seeds the backoff jitter, making retry schedules
// reproducible in tests.
func WithJitterSeed(seed int64) ClientOption {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithDialer replaces the TCP dialer (tests, proxies).
func WithDialer(dial func(addr string, timeout time.Duration) (net.Conn, error)) ClientOption {
	return func(c *Client) { c.dial = dial }
}

// WithClientTracer records one span per connection attempt
// ("client.attempt") on tr, exportable as a JSONL trace.
func WithClientTracer(tr *obs.Tracer) ClientOption {
	return func(c *Client) { c.tracer = tr }
}

// WithAckObserver registers a sink for per-bundle acknowledgement
// latency: the time from starting to write a bundle's wire bytes to
// reading the server's matching ack. The fleet benchmark feeds these
// samples into its p50/p99 ack-latency quantiles. obs must be safe for
// the caller's own concurrency (one client uploads serially, so a
// per-client observer needs no locking).
func WithAckObserver(obs func(time.Duration)) ClientOption {
	return func(c *Client) { c.ackObs = obs }
}

// WithFaults attaches a fault injector to the upload path: wire lines
// may be corrupted, truncated, duplicated or dropped, batches may be
// reordered, and sends may be delayed, exactly as an unreliable network
// would. Used by the soak tests and chaos tooling; production clients
// leave it nil.
func WithFaults(in *faults.Injector) ClientOption {
	return func(c *Client) { c.injector = in }
}

// WithBinary makes the client offer the binary columnar codec on each
// connection (hello "EDX1 bin"). A server that echoes the hello gets
// length-prefixed CRC-framed binenc bundles — smaller on the wire and
// cheaper to decode; one that rejects it (any pre-binary server
// quarantines the hello as an undecodable line) flips the client into
// text mode for the rest of its life, so a binary-capable phone talking
// to an old backend just ingests via JSON as before.
func WithBinary() ClientOption {
	return func(c *Client) { c.binary = true }
}

// NewClient creates a client for the server at addr.
func NewClient(addr string, opts ...ClientOption) *Client {
	c := &Client{
		addr:        addr,
		timeout:     10 * time.Second,
		maxAttempts: 3,
		backoffBase: 100 * time.Millisecond,
		backoffMax:  5 * time.Second,
		dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		},
		sleep: time.Sleep,
	}
	for _, o := range opts {
		o(c)
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return c
}

// wireBundle is one bundle prepared for upload.
type wireBundle struct {
	orig     int                // index in the caller's slice, for error reporting
	key      string             // idempotent content key
	scrubbed *trace.TraceBundle // scrubbed, key-stamped bundle
	line     []byte             // serialized JSON line (no trailing newline), encoded on first text-mode use
	payload  []byte             // binenc payload, prepared when the binary codec is offered
}

// textLine returns (encoding on first use) the bundle's JSON wire line.
// Lazy so a binary-mode upload never pays for the text fallback it does
// not send; the line is still encoded exactly once if the server turns
// out to speak text only.
func (wb *wireBundle) textLine() ([]byte, error) {
	if wb.line == nil {
		var buf bytes.Buffer
		if err := trace.EncodeBundle(&buf, wb.scrubbed); err != nil {
			return nil, err
		}
		wb.line = bytes.TrimRight(buf.Bytes(), "\n")
	}
	return wb.line, nil
}

// Upload scrubs, stamps and sends the bundles if the phone state allows
// it. Bundles are acknowledged individually; on a transient failure the
// client backs off and resumes from the first unacknowledged bundle. A
// bundle still rejected when attempts are exhausted surfaces as a
// *RejectedError.
func (c *Client) Upload(state PhoneState, bundles []*trace.TraceBundle) error {
	if !state.Eligible() {
		return ErrNotEligible
	}
	if len(bundles) == 0 {
		return nil
	}
	wire := make([]wireBundle, len(bundles))
	useBinary := c.binary && !c.textOnly.Load()
	for i, b := range bundles {
		scrubbed := trace.ScrubBundle(b) // PII never leaves the phone
		scrubbed.Key = trace.ContentKey(scrubbed)
		wire[i] = wireBundle{orig: i, key: scrubbed.Key, scrubbed: scrubbed}
		if useBinary {
			payload, err := binenc.EncodeBundle(nil, scrubbed)
			if err != nil {
				return fmt.Errorf("collect: binary encode bundle %d: %w", i, err)
			}
			wire[i].payload = payload
		} else if _, err := wire[i].textLine(); err != nil {
			return fmt.Errorf("collect: encode bundle %d: %w", i, err)
		}
	}
	if c.injector != nil {
		perm := c.injector.Perm(len(wire))
		reordered := make([]wireBundle, len(wire))
		for i, p := range perm {
			reordered[i] = wire[p]
		}
		wire = reordered
	}

	pending := wire
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt)
			c.backoffNanos.Add(int64(d))
			hCliBackoff.Observe(d.Seconds())
			mCliRetries.Inc()
			c.sleep(d)
		}
		c.attempts.Add(1)
		mCliAttempts.Inc()
		var sp *obs.Span
		if c.tracer != nil {
			sp = c.tracer.Start("client.attempt")
		}
		acked, err := c.uploadOnce(pending)
		if sp != nil {
			sp.End()
		}
		pending = pending[acked:]
		if len(pending) == 0 && err == nil {
			return nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("attempts exhausted")
	}
	var rej *RejectedError
	if errors.As(lastErr, &rej) {
		c.rejected.Add(1)
		mCliRejected.Inc()
	}
	return fmt.Errorf("collect: %d bundle(s) unacknowledged after %d attempts: %w",
		len(pending), c.maxAttempts, lastErr)
}

// backoff computes the sleep before retry `attempt` (1-based):
// base<<(attempt-1), capped, plus up to 50% jitter.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.backoffBase << uint(attempt-1)
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d + jitter
}

// uploadOnce dials, negotiates the codec when the binary one is
// offered, and sends pending bundles in order until all are
// acknowledged or one fails, returning how many were acknowledged OK.
func (c *Client) uploadOnce(pending []wireBundle) (acked int, err error) {
	conn, err := c.dial(c.addr, c.timeout)
	if err != nil {
		return 0, fmt.Errorf("dial %s: %w", c.addr, err)
	}
	defer conn.Close()
	w := newLineWriter(conn)
	r := newLineReader(conn)
	useBinary := false
	if c.binary && !c.textOnly.Load() {
		if err := conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return 0, fmt.Errorf("deadline: %w", err)
		}
		if err := w.writeLine([]byte(helloBinary)); err != nil {
			return 0, fmt.Errorf("hello: %w", err)
		}
		reply, err := r.readLine()
		if err != nil {
			return 0, fmt.Errorf("hello reply: %w", err)
		}
		if reply == helloBinary {
			useBinary = true
		} else {
			// A pre-binary server just quarantined the hello and sent an
			// ERR ack: it speaks text only. Remember that for every
			// future connection and continue in text on this one.
			c.textOnly.Store(true)
		}
	}
	for i := range pending {
		wb := &pending[i]
		// Per-request deadline: each bundle gets a fresh budget.
		if err := conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return acked, fmt.Errorf("deadline: %w", err)
		}
		var sendStart time.Time
		if c.ackObs != nil {
			sendStart = time.Now()
		}
		msg := wb.payload
		if !useBinary {
			if msg, err = wb.textLine(); err != nil {
				return acked, fmt.Errorf("encode bundle %d: %w", wb.orig, err)
			}
		}
		msgs := [][]byte{msg}
		if c.injector != nil {
			if d := c.injector.Delay(); d > 0 {
				c.sleep(d)
			}
			var drop bool
			// In binary mode faults hit the frame payload before its CRC
			// is computed, so corruption reaches the server's decoder and
			// integrity checks (not just the framing layer) — same
			// adversarial surface the text path exercises.
			msgs, drop = c.injector.Apply(msg)
			if drop {
				return acked, errors.New("connection dropped (injected)")
			}
		}
		for _, m := range msgs {
			if useBinary {
				err = w.writeFrame(m)
			} else {
				err = w.writeLine(m)
			}
			if err != nil {
				return acked, fmt.Errorf("send bundle %d: %w", wb.orig, err)
			}
			c.linesSent.Add(1)
			mCliSent.Inc()
		}
		if err := c.awaitAck(r, *wb); err != nil {
			return acked, err
		}
		if c.ackObs != nil {
			c.ackObs(time.Since(sendStart))
		}
		acked++
		c.acked.Add(1)
		mCliAcked.Inc()
	}
	return acked, nil
}

// awaitAck reads acknowledgements until one addresses wb. Acks carry
// the bundle's content key, so stale acks caused by duplicated lines
// (the server acknowledges every copy) are recognized and skipped
// instead of desynchronizing the stream.
func (c *Client) awaitAck(r *lineReader, wb wireBundle) error {
	for {
		ack, err := r.readLine()
		if err != nil {
			return fmt.Errorf("ack for bundle %d: %w", wb.orig, err)
		}
		status, key, reason := parseAck(ack)
		switch status {
		case ackOK:
			if key == "" || key == wb.key {
				return nil
			}
			continue // stale ack for an earlier (duplicated) line
		case ackErr:
			if key == "" || key == ackUnknownKey || key == wb.key {
				return &RejectedError{Index: wb.orig, Reason: reason}
			}
			continue // stale rejection of a duplicated line's copy
		default:
			return fmt.Errorf("ack for bundle %d: malformed %q", wb.orig, ack)
		}
	}
}

// parseAck splits an ack line into status, key and reason. The wire
// forms are "OK <key>" and "ERR <key> <reason>"; a bare "OK"/"ERR" (no
// key) is accepted for protocol compatibility.
func parseAck(ack string) (status, key, reason string) {
	status, rest, _ := strings.Cut(strings.TrimSpace(ack), " ")
	if status != ackOK && status != ackErr {
		return "", "", ack
	}
	key, reason, _ = strings.Cut(rest, " ")
	return status, key, reason
}

// lineReader and lineWriter frame the newline-delimited wire protocol.

type lineReader struct{ r *bufio.Reader }

func newLineReader(conn net.Conn) *lineReader {
	return &lineReader{r: bufio.NewReader(conn)}
}

func (l *lineReader) readLine() (string, error) {
	s, err := l.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(s), nil
}

type lineWriter struct{ w *bufio.Writer }

func newLineWriter(conn net.Conn) *lineWriter {
	return &lineWriter{w: bufio.NewWriter(conn)}
}

func (l *lineWriter) writeLine(b []byte) error {
	if _, err := l.w.Write(b); err != nil {
		return err
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return err
	}
	return l.w.Flush()
}

// writeFrame sends one binenc frame (binary mode; no newline framing).
func (l *lineWriter) writeFrame(payload []byte) error {
	if err := binenc.WriteFrame(l.w, payload); err != nil {
		return err
	}
	return l.w.Flush()
}
