package collect

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/trace"
)

// PhoneState is the device condition the upload policy checks.
type PhoneState struct {
	// Charging reports whether the phone is on external power.
	Charging bool
	// OnWiFi reports whether the phone has an unmetered connection.
	OnWiFi bool
}

// Eligible implements the paper's upload policy: only while charging on
// WiFi, so collection never impacts normal phone usage.
func (s PhoneState) Eligible() bool { return s.Charging && s.OnWiFi }

// ErrNotEligible is returned when the phone state forbids uploading.
var ErrNotEligible = errors.New("collect: phone not charging on WiFi; upload deferred")

// ErrRejected is returned when the server refuses a bundle.
type RejectedError struct {
	Index  int
	Reason string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("collect: bundle %d rejected: %s", e.Index, e.Reason)
}

// Client uploads trace bundles from a phone to the collection server.
type Client struct {
	addr    string
	timeout time.Duration
}

// NewClient creates a client for the server at addr.
func NewClient(addr string) *Client {
	return &Client{addr: addr, timeout: 10 * time.Second}
}

// Upload scrubs and sends the bundles if the phone state allows it.
// Every bundle is acknowledged before the next is sent; the first
// rejection aborts the upload with a *RejectedError.
func (c *Client) Upload(state PhoneState, bundles []*trace.TraceBundle) error {
	if !state.Eligible() {
		return ErrNotEligible
	}
	if len(bundles) == 0 {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("collect: dial %s: %w", c.addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return fmt.Errorf("collect: deadline: %w", err)
	}
	w := bufio.NewWriter(conn)
	r := bufio.NewReader(conn)
	for i, b := range bundles {
		scrubbed := trace.ScrubBundle(b) // PII never leaves the phone
		if err := trace.EncodeBundle(w, scrubbed); err != nil {
			return fmt.Errorf("collect: encode bundle %d: %w", i, err)
		}
		if err := w.Flush(); err != nil {
			return fmt.Errorf("collect: send bundle %d: %w", i, err)
		}
		ack, err := r.ReadString('\n')
		if err != nil {
			return fmt.Errorf("collect: ack for bundle %d: %w", i, err)
		}
		ack = strings.TrimSpace(ack)
		if ack != ackOK {
			return &RejectedError{Index: i, Reason: strings.TrimPrefix(ack, ackErrPrefix)}
		}
	}
	return nil
}
