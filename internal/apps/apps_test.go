package apps

import (
	"testing"

	"repro/internal/abd"
	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/instrument"
	"repro/internal/trace"
)

func TestCatalogComplete(t *testing.T) {
	apps, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 40 {
		t.Fatalf("catalog has %d apps, want 40", len(apps))
	}
	seen := make(map[string]bool)
	for i, a := range apps {
		if a.ID != i+1 {
			t.Errorf("app %d has ID %d", i, a.ID)
		}
		if seen[a.AppID] {
			t.Errorf("duplicate app ID %q", a.AppID)
		}
		seen[a.AppID] = true
		if a.TotalSourceLines() <= 0 {
			t.Errorf("%s: no source lines", a.AppID)
		}
		if a.MainActivity == "" || len(a.BrowseActivities) == 0 {
			t.Errorf("%s: no browse surface", a.AppID)
		}
		if len(a.TriggerScript) == 0 {
			t.Errorf("%s: no trigger script", a.AppID)
		}
		if a.PaperCodeReduction <= 0 || a.PaperCodeReduction > 100 {
			t.Errorf("%s: paper reduction %v", a.AppID, a.PaperCodeReduction)
		}
	}
}

func TestCountByCauseMatchesTable(t *testing.T) {
	counts := CountByCause()
	// Table III tallies (the paper's §IV-B text says 21 no-sleep; the
	// table itself lists 24 — we follow the table).
	if counts[abd.NoSleep] != 24 {
		t.Errorf("no-sleep = %d, want 24", counts[abd.NoSleep])
	}
	if counts[abd.Configuration] != 10 {
		t.Errorf("configuration = %d, want 10", counts[abd.Configuration])
	}
	if counts[abd.Loop] != 6 {
		t.Errorf("loop = %d, want 6", counts[abd.Loop])
	}
}

func TestCaseStudyLineTotalsMatchPaper(t *testing.T) {
	tests := []struct {
		build func() (*App, error)
		total int
	}{
		{K9Mail, 98532},
		{OpenGPS, 5060},
		{Wallabag, 21424},
		{Tinfoil, 4226},
	}
	for _, tt := range tests {
		a, err := tt.build()
		if err != nil {
			t.Fatal(err)
		}
		if got := a.TotalSourceLines(); got != tt.total {
			t.Errorf("%s: total lines = %d, want %d", a.AppID, got, tt.total)
		}
	}
}

func TestByAppID(t *testing.T) {
	for _, id := range []string{"k9mail", "tinfoil", "wallabag", "opengps", "facebook"} {
		a, err := ByAppID(id)
		if err != nil {
			t.Errorf("ByAppID(%q): %v", id, err)
			continue
		}
		if a.AppID != id {
			t.Errorf("ByAppID(%q) returned %q", id, a.AppID)
		}
	}
	if _, err := ByAppID("flappy-bird"); err == nil {
		t.Error("unknown app resolved")
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a1, err := ByAppID("facebook")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ByAppID("facebook")
	if err != nil {
		t.Fatal(err)
	}
	if a1.TotalSourceLines() != a2.TotalSourceLines() {
		t.Error("generation not deterministic in line counts")
	}
	if apk.DisassembleString(a1.Package()) != apk.DisassembleString(a2.Package()) {
		t.Error("generation not deterministic in APK content")
	}
}

func TestBehaviorsAreCopies(t *testing.T) {
	a, err := ByAppID("k9mail")
	if err != nil {
		t.Fatal(err)
	}
	b1 := a.Behaviors(false)
	delete(b1, a.Fault.Trigger)
	b2 := a.Behaviors(false)
	if _, ok := b2[a.Fault.Trigger]; !ok {
		t.Error("Behaviors returns shared map")
	}
}

func TestBuggyBehaviorContainsFaultFixedStopsIt(t *testing.T) {
	apps, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps {
		buggy := a.Behaviors(false)
		tb, ok := buggy[a.Fault.Trigger]
		if !ok || len(tb.Effects) == 0 {
			t.Errorf("%s: buggy trigger has no effects", a.AppID)
			continue
		}
		fixed := a.Behaviors(true)
		switch a.RootCause {
		case abd.Configuration:
			// Fix validates the configuration: no drain installed.
			fb := fixed[a.Fault.Trigger]
			for _, e := range fb.Effects {
				if e.Kind == android.EffectConditionalStartLoop {
					t.Errorf("%s: fixed variant still has the conditional drain", a.AppID)
				}
			}
		default:
			rb, ok := fixed[a.Fault.ReleasePoint]
			if !ok || len(rb.Effects) == 0 {
				t.Errorf("%s: fixed variant has no release at %s", a.AppID, a.Fault.ReleasePoint)
			}
		}
	}
}

func TestTriggerScriptsRun(t *testing.T) {
	apps, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	og, err := OpenGPS()
	if err != nil {
		t.Fatal(err)
	}
	apps = append(apps, og)
	for _, a := range apps {
		sys := android.NewSystem(0)
		p := sys.NewProcess(a.AppID,
			android.WithBehaviors(a.Behaviors(false)),
			android.WithInstrumentation(android.DefaultInstrumentation()))
		if err := p.LaunchActivity(a.MainActivity); err != nil {
			t.Fatalf("%s: launch: %v", a.AppID, err)
		}
		if err := android.RunScript(p, a.TriggerScript); err != nil {
			t.Fatalf("%s: trigger script: %v", a.AppID, err)
		}
		if err := p.Idle(30_000); err != nil {
			t.Fatal(err)
		}
		// After the trigger script the app must actually be draining:
		// some component (besides display) is busy in the background.
		u := sys.Ledger().UtilizationAt(p.PID(), sys.NowMS()-200)
		drain := 0.0
		for _, c := range trace.Components() {
			if c == trace.Display {
				continue
			}
			drain += u.Get(c)
		}
		// Loops have duty cycles; probe a few points.
		if drain == 0 {
			for off := int64(0); off < 5000 && drain == 0; off += 250 {
				u = sys.Ledger().UtilizationAt(p.PID(), sys.NowMS()-5000+off)
				for _, c := range trace.Components() {
					if c != trace.Display {
						drain += u.Get(c)
					}
				}
			}
		}
		if drain == 0 {
			t.Errorf("%s (%v): no drain after trigger script", a.AppID, a.RootCause)
		}
		if err := p.EventTrace().Validate(); err != nil {
			t.Errorf("%s: invalid trace: %v", a.AppID, err)
		}
	}
}

func TestFixedVariantStopsDrainAfterRelease(t *testing.T) {
	apps, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	og, err := OpenGPS()
	if err != nil {
		t.Fatal(err)
	}
	apps = append(apps, og)
	for _, a := range apps {
		sys := android.NewSystem(0)
		p := sys.NewProcess(a.AppID, android.WithBehaviors(a.Behaviors(true)))
		if err := p.LaunchActivity(a.MainActivity); err != nil {
			t.Fatalf("%s: %v", a.AppID, err)
		}
		if err := android.RunScript(p, a.TriggerScript); err != nil {
			t.Fatalf("%s: %v", a.AppID, err)
		}
		if err := p.Idle(30_000); err != nil {
			t.Fatal(err)
		}
		// Trigger scripts end with Home(), which passes the release
		// point (onPause). Long after, nothing should drain.
		var drain float64
		for off := int64(0); off < 5000; off += 250 {
			u := sys.Ledger().UtilizationAt(p.PID(), sys.NowMS()-5000+off)
			for _, c := range trace.Components() {
				drain += u.Get(c)
			}
		}
		if drain > 0 {
			t.Errorf("%s (%v): fixed variant still drains %.2f", a.AppID, a.RootCause, drain)
		}
	}
}

func TestNoSleepAppsHaveStaticLeak(t *testing.T) {
	apps, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps {
		m, err := a.Package().Lookup(a.Fault.Trigger)
		if err != nil {
			t.Fatalf("%s: trigger method missing: %v", a.AppID, err)
		}
		g, err := apk.BuildCFG(m.Body)
		if err != nil {
			t.Fatalf("%s: CFG: %v", a.AppID, err)
		}
		acquires := apk.Acquires(m.Body)
		if a.RootCause == abd.NoSleep {
			if len(acquires) == 0 {
				t.Errorf("%s: no-sleep app has no acquire", a.AppID)
				continue
			}
			if !g.LeakPathExists(acquires[0].Index, acquires[0].Resource) {
				t.Errorf("%s: no-sleep app has no leaking path", a.AppID)
			}
		} else if len(acquires) != 0 {
			t.Errorf("%s (%v): unexpected acquires in trigger", a.AppID, a.RootCause)
		}
	}
}

func TestInstrumentationCoversTriggerSurface(t *testing.T) {
	// Every fault trigger that is a pool event must be instrumentable.
	apps, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	pool := instrument.DefaultPool()
	for _, a := range apps {
		res, err := instrument.Instrument(a.Package(), pool)
		if err != nil {
			t.Fatalf("%s: %v", a.AppID, err)
		}
		if res.ProbeCount == 0 {
			t.Errorf("%s: nothing instrumented", a.AppID)
		}
		// The trigger callback itself is pool-eligible for widget/
		// lifecycle triggers (all catalog faults use those).
		if !pool.Contains(a.Fault.Trigger.Callback) {
			t.Errorf("%s: trigger %q not in instrumentation pool",
				a.AppID, a.Fault.Trigger.Callback)
		}
	}
}
