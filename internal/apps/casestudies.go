package apps

import (
	"fmt"

	"repro/internal/abd"
	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/trace"
)

// This file hand-models the paper's four case-study apps so the
// diagnosis reproduces the published event vocabularies and line counts:
//
//	K-9 Mail (§III-B, Figs 3/7/8, Table II): misconfigured IMAP
//	    connection limit -> periodic reconnect attempts. 98,532 lines.
//	OpenGPS (§IV-C, Figs 9-11, Table IV): location listener not released
//	    when LoggerMap is backgrounded. 5,060 lines.
//	Wallabag (§IV-C, Figs 12-14, Table V): deleting an article already
//	    deleted server-side -> CPU-heavy sync retry. 21,424 lines.
//	Tinfoil (§IV-C, Fig 15, Table VI): newsfeed keeps refreshing an
//	    invisible interface in the background. 4,226 lines.

// method is a terse method constructor for the hand-built models.
func method(name string, lines int) apk.Method {
	return apk.Method{
		Name: name, SourceLines: lines,
		Body: []apk.Instruction{{Op: apk.OpWork}, {Op: apk.OpReturn}},
	}
}

// lifecycleClass builds a class with the full lifecycle plus extra
// methods, and registers light default behaviors for the lifecycle.
func lifecycleClass(name string, b android.BehaviorMap, extra ...apk.Method) apk.Class {
	cls := apk.Class{Name: name}
	lines := map[string]int{
		android.OnCreate: 70, android.OnStart: 12, android.OnRestart: 8,
		android.OnResume: 26, android.OnPause: 18, android.OnStop: 10, android.OnDestroy: 14,
	}
	for _, cb := range lifecycleNames {
		cls.Methods = append(cls.Methods, method(cb, lines[cb]))
		usage := android.ComponentUsage{Component: trace.CPU, Level: 0.3, DurationMS: 540}
		if cb == android.OnCreate {
			usage = android.ComponentUsage{Component: trace.CPU, Level: 0.5, DurationMS: 650}
		}
		b[trace.EventKey{Class: name, Callback: cb}] = android.Behavior{
			LatencyMS: usage.DurationMS,
			Usages:    []android.ComponentUsage{usage},
		}
	}
	cls.Methods = append(cls.Methods, extra...)
	return cls
}

// padToTotal appends filler helper methods to a dedicated core class so
// the package's total line count matches the paper's reported total.
func padToTotal(pkg *apk.Package, coreClass string, target int) error {
	current := pkg.TotalSourceLines()
	if current > target {
		return fmt.Errorf("apps: %s already has %d lines, above the paper total %d",
			pkg.AppID, current, target)
	}
	cls := apk.Class{Name: coreClass}
	i := 0
	for current < target {
		chunk := 350
		if target-current < chunk {
			chunk = target - current
		}
		cls.Methods = append(cls.Methods, method(fmt.Sprintf("core%d", i), chunk))
		current += chunk
		i++
	}
	pkg.Classes = append(pkg.Classes, cls)
	return nil
}

// K9Mail models the paper's running example: the user raises the IMAP
// connection count past the server's limit in AccountSettings; when they
// return to the MessageList the app starts periodically retrying the
// rejected connections (paper §III-B). Total 98,532 lines; EnergyDx
// reports 161 lines (Table II events).
func K9Mail() (*App, error) {
	const (
		accountSettings = "Lcom/fsck/k9/activity/setup/AccountSettings"
		messageList     = "Lcom/fsck/k9/activity/MessageList"
		k9Activity      = "Lcom/fsck/k9/K9Activity"
		messageCompose  = "Lcom/fsck/k9/activity/MessageCompose"
		mailService     = "Lcom/fsck/k9/service/MailService"
	)
	b := android.BehaviorMap{}
	pkg := &apk.Package{AppID: "k9mail"}

	settings := lifecycleClass(accountSettings, b, method("onClick", 22))
	// The settings tap writes the over-limit connection count.
	b[trace.EventKey{Class: accountSettings, Callback: "onClick"}] = android.Behavior{
		LatencyMS: 520,
		Effects: []android.Effect{{
			Kind: android.EffectSetConfig, ConfigKey: "imapConnections", ConfigValue: "50",
		}},
	}

	list := lifecycleClass(messageList, b,
		method("onItemClick", 35), method("checkMail", 48))
	b[trace.EventKey{Class: messageList, Callback: "onItemClick"}] = android.Behavior{
		LatencyMS: 520,
		Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.35, DurationMS: 520}},
	}
	// Refreshing the mail list is the expensive-but-normal event whose
	// raw power transitions Steps 2-3 must remove (Fig 7a).
	b[trace.EventKey{Class: messageList, Callback: "checkMail"}] = android.Behavior{
		LatencyMS: 3000,
		Usages: []android.ComponentUsage{
			{Component: trace.WiFi, Level: 0.8, DurationMS: 3000},
			{Component: trace.CPU, Level: 0.35, DurationMS: 2500},
		},
	}

	k9act := lifecycleClass(k9Activity, b, method("onClick", 18))
	b[trace.EventKey{Class: k9Activity, Callback: "onClick"}] = android.Behavior{
		LatencyMS: 520,
		Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.25, DurationMS: 520}},
	}

	compose := lifecycleClass(messageCompose, b, method("onKey", 15))
	// Composing email: the dashed-box spikes of Fig 3.
	b[trace.EventKey{Class: messageCompose, Callback: "onKey"}] = android.Behavior{
		LatencyMS: 520,
		Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.45, DurationMS: 520}},
	}

	svc := apk.Class{Name: mailService}
	svc.Methods = append(svc.Methods, method(android.OnCreate, 39), method(android.OnDestroy, 21))

	pkg.Classes = append(pkg.Classes, settings, list, k9act, compose, svc)

	a := &App{
		ID: 3, AppID: "k9mail", Name: "K-9 Mail", Downloads: "5M+",
		RootCause:          abd.Configuration,
		PaperCodeReduction: 99,
		MainActivity:       messageList,
		BrowseActivities:   []string{messageList, k9Activity, messageCompose},
		Widgets: map[string][]string{
			messageList:    {"onItemClick", "checkMail"},
			k9Activity:     {"onClick"},
			messageCompose: {"onKey"},
		},
		Fault: abd.Fault{
			Kind:         abd.Configuration,
			Trigger:      trace.EventKey{Class: messageList, Callback: android.OnResume},
			ReleasePoint: trace.EventKey{Class: messageList, Callback: android.OnPause},
			Resource:     "imap-retry",
			ConfigKey:    "imapConnections",
			ConfigValue:  "50",
			LoopSpec: android.LoopSpec{
				PeriodMS: 2500, BurstMS: 2100,
				Usages: []android.ComponentUsage{
					{Component: trace.WiFi, Level: 0.85},
					{Component: trace.CPU, Level: 0.4},
				},
			},
		},
		// The user flow behind Fig 2: change the account configuration,
		// the mail service restarts, return to the message list, and
		// the ABD begins to manifest.
		TriggerScript: []android.Step{
			android.Launch(accountSettings),
			android.Tap("onClick"),
			android.StopSvc(mailService),
			android.StartSvc(mailService),
			android.Launch(messageList), // MessageList:onResume -> retry loop
			android.Home(),
		},
	}
	a.pkg = pkg
	a.behaviors = b
	if err := padToTotal(pkg, "Lcom/fsck/k9/K9Core", 98532); err != nil {
		return nil, err
	}
	if err := a.finish(); err != nil {
		return nil, err
	}
	return a, nil
}

// OpenGPS models the §IV-C location-tracking case study: the GPS listener
// acquired while the LoggerMap is visible is not released when the
// activity is backgrounded, so GPS keeps drawing power with the display
// off (Fig 11). Total 5,060 lines; EnergyDx narrows to 569.
func OpenGPS() (*App, error) {
	const (
		loggerMap       = "Lnl/sogeti/android/gpstracker/LoggerMap"
		controlTracking = "Lnl/sogeti/android/gpstracker/ControlTracking"
		aboutActivity   = "Lnl/sogeti/android/gpstracker/About"
	)
	b := android.BehaviorMap{}
	pkg := &apk.Package{AppID: "opengps"}

	logger := lifecycleClass(loggerMap, b, method("onTouch", 24))
	b[trace.EventKey{Class: loggerMap, Callback: "onTouch"}] = android.Behavior{
		LatencyMS: 520,
		Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.4, DurationMS: 520}},
	}
	control := lifecycleClass(controlTracking, b, method("onClick", 19))
	b[trace.EventKey{Class: controlTracking, Callback: "onClick"}] = android.Behavior{
		LatencyMS: 520,
		Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.3, DurationMS: 520}},
	}
	about := lifecycleClass(aboutActivity, b)

	pkg.Classes = append(pkg.Classes, logger, control, about)

	a := &App{
		ID: 0, AppID: "opengps", Name: "OpenGPS", Downloads: "n/a",
		RootCause:          abd.NoSleep,
		PaperCodeReduction: (5060.0 - 569.0) / 5060.0 * 100,
		MainActivity:       controlTracking,
		BrowseActivities:   []string{controlTracking, aboutActivity},
		Widgets: map[string][]string{
			controlTracking: {"onClick"},
		},
		Fault: abd.Fault{
			Kind: abd.NoSleep,
			// Tracking legitimately starts when the map resumes; the
			// bug is the missing release on pause.
			Trigger:      trace.EventKey{Class: loggerMap, Callback: android.OnResume},
			ReleasePoint: trace.EventKey{Class: loggerMap, Callback: android.OnPause},
			Resource:     "location-listener",
			Component:    trace.GPS,
			Level:        1.0,
		},
		TriggerScript: []android.Step{
			android.Launch(loggerMap),
			android.Wait(4000),
			android.Home(), // LoggerMap:onPause without release -> Fig 11
		},
	}
	a.pkg = pkg
	a.behaviors = b
	if err := padToTotal(pkg, "Lnl/sogeti/android/gpstracker/Core", 5060); err != nil {
		return nil, err
	}
	if err := a.finish(); err != nil {
		return nil, err
	}
	return a, nil
}

// Wallabag models the delete-retry case study: deleting an article that
// the server already deleted makes the app retry the sync indefinitely,
// burning CPU (Fig 14). Total 21,424 lines; EnergyDx narrows to 306.
func Wallabag() (*App, error) {
	const (
		readArticle   = "Lfr/gaulupeau/apps/ReadArticle"
		articlesList  = "Lfr/gaulupeau/apps/ArticlesList"
		libsActivity  = "Lfr/gaulupeau/apps/LibsActivity"
		baseActionBar = "Lfr/gaulupeau/apps/BaseActionBarActivity"
	)
	b := android.BehaviorMap{}
	pkg := &apk.Package{AppID: "wallabag"}

	read := lifecycleClass(readArticle, b, method("menuDeleted", 31), method("onTouch", 14))
	// A normal delete is cheap; the *retry loop* is what drains.
	b[trace.EventKey{Class: readArticle, Callback: "menuDeleted"}] = android.Behavior{
		LatencyMS: 520,
		Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.35, DurationMS: 520}},
	}
	b[trace.EventKey{Class: readArticle, Callback: "onTouch"}] = android.Behavior{
		LatencyMS: 520,
		Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.2, DurationMS: 520}},
	}
	list := lifecycleClass(articlesList, b, method("onItemClick", 27), method("syncArticles", 44))
	b[trace.EventKey{Class: articlesList, Callback: "onItemClick"}] = android.Behavior{
		LatencyMS: 520,
		Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.3, DurationMS: 520}},
	}
	b[trace.EventKey{Class: articlesList, Callback: "syncArticles"}] = android.Behavior{
		LatencyMS: 2800,
		Usages: []android.ComponentUsage{
			{Component: trace.WiFi, Level: 0.75, DurationMS: 2800},
			{Component: trace.CPU, Level: 0.3, DurationMS: 2500},
		},
	}
	libs := lifecycleClass(libsActivity, b)
	base := lifecycleClass(baseActionBar, b)

	pkg.Classes = append(pkg.Classes, read, list, libs, base)

	a := &App{
		ID: 28, AppID: "wallabag", Name: "Wallabag", Downloads: "1M+",
		RootCause:          abd.Configuration,
		PaperCodeReduction: 98.57,
		MainActivity:       articlesList,
		BrowseActivities:   []string{articlesList, readArticle, libsActivity},
		Widgets: map[string][]string{
			articlesList: {"onItemClick", "syncArticles"},
			readArticle:  {"onTouch"},
		},
		Fault: abd.Fault{
			Kind: abd.Configuration,
			// The drain starts at the delete tap, but only when the
			// article is already gone server-side (the inconsistent
			// state that acts as the "misconfiguration").
			Trigger:      trace.EventKey{Class: readArticle, Callback: "menuDeleted"},
			ReleasePoint: trace.EventKey{Class: readArticle, Callback: android.OnPause},
			Resource:     "delete-retry",
			ConfigKey:    "articleDeletedOnServer",
			ConfigValue:  "true",
			LoopSpec: android.LoopSpec{
				PeriodMS: 1800, BurstMS: 1600,
				Usages: []android.ComponentUsage{
					{Component: trace.CPU, Level: 0.85},
					{Component: trace.WiFi, Level: 0.25},
				},
			},
		},
		TriggerScript: []android.Step{
			android.SetCfg("articleDeletedOnServer", "true"),
			android.Launch(articlesList),
			android.Launch(readArticle),
			android.Tap("menuDeleted"),
			android.Back(),
			android.Home(),
		},
	}
	a.pkg = pkg
	a.behaviors = b
	if err := padToTotal(pkg, "Lfr/gaulupeau/apps/Core", 21424); err != nil {
		return nil, err
	}
	if err := a.finish(); err != nil {
		return nil, err
	}
	return a, nil
}

// Tinfoil models the background-sync case study: the newsfeed interface
// keeps refreshing even after the app is backgrounded, rendering an
// invisible UI. Total 4,226 lines; EnergyDx narrows to 236.
func Tinfoil() (*App, error) {
	const (
		fbWrapper   = "Lcom/danvelazco/fbwrapper/FbWrapper"
		preferences = "Lcom/danvelazco/fbwrapper/Preferences"
	)
	b := android.BehaviorMap{}
	pkg := &apk.Package{AppID: "tinfoil"}

	wrapper := lifecycleClass(fbWrapper, b,
		method("menu_item_newsfeed", 38), method("menu_about", 12), method("onClick", 20))
	b[trace.EventKey{Class: fbWrapper, Callback: "menu_about"}] = android.Behavior{
		LatencyMS: 520,
		Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.2, DurationMS: 520}},
	}
	b[trace.EventKey{Class: fbWrapper, Callback: "onClick"}] = android.Behavior{
		LatencyMS: 520,
		Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.3, DurationMS: 520}},
	}
	prefs := lifecycleClass(preferences, b, method("onClick", 16))
	b[trace.EventKey{Class: preferences, Callback: "onClick"}] = android.Behavior{
		LatencyMS: 520,
		Usages:    []android.ComponentUsage{{Component: trace.CPU, Level: 0.25, DurationMS: 520}},
	}

	pkg.Classes = append(pkg.Classes, wrapper, prefs)

	a := &App{
		ID: 18, AppID: "tinfoil", Name: "Tinfoil", Downloads: "n/a",
		RootCause:          abd.Loop,
		PaperCodeReduction: 92.4,
		MainActivity:       fbWrapper,
		BrowseActivities:   []string{fbWrapper, preferences},
		Widgets: map[string][]string{
			fbWrapper:   {"onClick", "menu_about"},
			preferences: {"onClick"},
		},
		Fault: abd.Fault{
			Kind:         abd.Loop,
			Trigger:      trace.EventKey{Class: fbWrapper, Callback: "menu_item_newsfeed"},
			ReleasePoint: trace.EventKey{Class: fbWrapper, Callback: android.OnPause},
			Resource:     "newsfeed-refresh",
			LoopSpec: android.LoopSpec{
				PeriodMS: 2500, BurstMS: 2000,
				Usages: []android.ComponentUsage{
					{Component: trace.WiFi, Level: 0.8},
					{Component: trace.CPU, Level: 0.45},
				},
			},
		},
		TriggerScript: []android.Step{
			android.Launch(fbWrapper),
			android.Tap("menu_item_newsfeed"),
			android.Home(), // the invisible interface keeps syncing
		},
	}
	a.pkg = pkg
	a.behaviors = b
	if err := padToTotal(pkg, "Lcom/danvelazco/fbwrapper/Core", 4226); err != nil {
		return nil, err
	}
	if err := a.finish(); err != nil {
		return nil, err
	}
	return a, nil
}
