// Package apps provides executable models of the 40 real-world apps the
// paper evaluates (Table III) plus the OpenGPS case-study app (§IV-C).
// Each App bundles:
//
//   - an APK model (package apk) with realistic per-method line counts,
//     carrying the statically-analyzable shape of its ABD;
//   - dynamic behaviors (package android) for its callbacks, with the ABD
//     fault injected (and a fixed variant for the Fig-17 comparison);
//   - the metadata the workload generator needs: which activities and
//     widgets normal users browse, and the script that triggers the ABD.
//
// Apps 3 (K-9 Mail), 18 (Tinfoil) and 28 (Wallabag) are hand-modelled
// after the paper's case studies; the remaining catalog entries are
// generated deterministically from their Table III row.
package apps

import (
	"fmt"
	"sort"

	"repro/internal/abd"
	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/trace"
)

// App is one evaluable application.
type App struct {
	// ID is the Table III row number (0 for the OpenGPS case study).
	ID int
	// AppID is the machine identifier (e.g. "k9mail").
	AppID string
	// Name is the Table III display name.
	Name string
	// Downloads is the Table III download-count bucket.
	Downloads string
	// RootCause is the ABD class.
	RootCause abd.Kind
	// PaperCodeReduction is the code-reduction percentage Table III
	// reports, kept for the paper-vs-measured comparison.
	PaperCodeReduction float64

	// Fault is the injected ABD.
	Fault abd.Fault

	// MainActivity is the activity launched at session start.
	MainActivity string
	// BrowseActivities are the activities normal users wander between
	// (never including the ABD trigger surface).
	BrowseActivities []string
	// Widgets maps an activity to the widget callbacks normal users tap.
	Widgets map[string][]string
	// TriggerScript is the user-action sequence that triggers the ABD.
	TriggerScript []android.Step

	pkg       *apk.Package
	behaviors android.BehaviorMap
	fixed     android.BehaviorMap
}

// Package returns the app's (buggy) APK model. Callers must not mutate
// it; use Clone for instrumentation experiments.
func (a *App) Package() *apk.Package { return a.pkg }

// Behaviors returns a copy of the behavior map, buggy or fixed.
func (a *App) Behaviors(fixedVariant bool) android.BehaviorMap {
	src := a.behaviors
	if fixedVariant {
		src = a.fixed
	}
	out := make(android.BehaviorMap, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// TotalSourceLines returns the app's total line count (the metric's
// N_All).
func (a *App) TotalSourceLines() int { return a.pkg.TotalSourceLines() }

// finish injects the fault into behaviors (buggy and fixed) and into the
// APK, and validates internal consistency.
func (a *App) finish() error {
	if err := a.Fault.Validate(); err != nil {
		return fmt.Errorf("app %s: %w", a.AppID, err)
	}
	if a.behaviors == nil {
		a.behaviors = android.BehaviorMap{}
	}
	a.fixed = make(android.BehaviorMap, len(a.behaviors)+2)
	for k, v := range a.behaviors {
		a.fixed[k] = v
	}
	if err := a.Fault.InjectBehavior(a.behaviors, false); err != nil {
		return fmt.Errorf("app %s: %w", a.AppID, err)
	}
	if err := a.Fault.InjectBehavior(a.fixed, true); err != nil {
		return fmt.Errorf("app %s: %w", a.AppID, err)
	}
	if err := a.Fault.InjectAPK(a.pkg, false); err != nil {
		return fmt.Errorf("app %s: %w", a.AppID, err)
	}
	if err := a.pkg.Validate(); err != nil {
		return fmt.Errorf("app %s: %w", a.AppID, err)
	}
	// Every browse surface must resolve to real methods so workloads and
	// instrumentation agree.
	for act, widgets := range a.Widgets {
		for _, w := range widgets {
			key := trace.EventKey{Class: act, Callback: w}
			if _, err := a.pkg.Lookup(key); err != nil {
				return fmt.Errorf("app %s: widget %s: %w", a.AppID, key, err)
			}
		}
	}
	return nil
}

// NewCustom assembles an app from hand-wired parts, bypassing the abd
// fault-injection path. It exists for faults *outside* the
// no-sleep/loop/configuration taxonomy (the paper's "unknown issues"
// claim): the caller wires the drain directly into the behavior map.
// The fixed variant equals the buggy one — by definition nobody knows
// the fix for an unknown issue yet.
func NewCustom(a *App, pkg *apk.Package, behaviors android.BehaviorMap) (*App, error) {
	if a == nil || pkg == nil {
		return nil, fmt.Errorf("apps: nil app or package")
	}
	if err := pkg.Validate(); err != nil {
		return nil, fmt.Errorf("apps: custom %s: %w", a.AppID, err)
	}
	a.pkg = pkg
	a.behaviors = behaviors
	a.fixed = make(android.BehaviorMap, len(behaviors))
	for k, v := range behaviors {
		a.fixed[k] = v
	}
	for act, widgets := range a.Widgets {
		for _, w := range widgets {
			key := trace.EventKey{Class: act, Callback: w}
			if _, err := a.pkg.Lookup(key); err != nil {
				return nil, fmt.Errorf("apps: custom %s: widget %s: %w", a.AppID, key, err)
			}
		}
	}
	if a.MainActivity == "" || len(a.BrowseActivities) == 0 || len(a.TriggerScript) == 0 {
		return nil, fmt.Errorf("apps: custom %s: incomplete browse/trigger surface", a.AppID)
	}
	return a, nil
}

// catalogRow is one Table III entry.
type catalogRow struct {
	id        int
	appID     string
	name      string
	downloads string
	cause     string
	paperPct  float64
}

// tableIII is the paper's Table III, verbatim.
var tableIII = []catalogRow{
	{1, "facebook", "Facebook", "1B+", "no-sleep", 98.5},
	{2, "bostonbusmap", "Boston Bus Map", "100k+", "loop", 86.04},
	{3, "k9mail", "K-9 Mail", "5M+", "configuration", 99},
	{4, "commonsware", "CommonsWare", "10M+", "no-sleep", 85.2},
	{5, "opencamera", "Open Camera", "10M+", "no-sleep", 98.3},
	{6, "droidvnc", "Droid VNC", "1M+", "no-sleep", 94.46},
	{7, "binauralbeats", "Binaural-Beats", "5M+", "no-sleep", 95.6},
	{8, "zmanim", "Zmanim", "100K+", "no-sleep", 96.5},
	{9, "montransit", "MonTransit", "500K+", "no-sleep", 94.1},
	{10, "aripuca", "Aripuca", "100K+", "no-sleep", 96.2},
	{11, "conversations", "Conversations", "10K+", "configuration", 96.6},
	{12, "ushahidi", "Ushahidi", "50K+", "no-sleep", 91.6},
	{13, "sofianav", "Sofia Navigation", "50K+", "configuration", 96.5},
	{14, "osmdroid", "Osmdroid", "5K+", "no-sleep", 87.3},
	{15, "geohashdroid", "Geohashdroid", "n/a", "no-sleep", 96.2},
	{16, "babblesink", "BabbleSink", "50K+", "no-sleep", 82.4},
	{17, "traccar", "Traccar", "50K+", "no-sleep", 96.2},
	{18, "tinfoil", "Tinfoil", "n/a", "loop", 92.4},
	{19, "pedometer", "Pedometer", "100K+", "configuration", 91.7},
	{20, "fbreader", "FBReader", "500K+", "no-sleep", 90.1},
	{21, "owncloud", "Owncloud", "100K+", "configuration", 97.3},
	{22, "sensorium", "Sensorium", "50M+", "no-sleep", 92.1},
	{23, "signal", "Signal", "500K+", "loop", 98.3},
	{24, "summitapk", "Summit APK", "500+", "no-sleep", 89},
	{25, "valenbisi", "ValenBisi", "10M+", "no-sleep", 93.5},
	{26, "ulogger", "Ulogger", "n/a", "no-sleep", 85.7},
	{27, "aat", "AAT", "50K+", "no-sleep", 97.4},
	{28, "wallabag", "Wallabag", "1M+", "configuration", 98.57},
	{29, "tomahawk", "Tomahawk Player", "n/a", "no-sleep", 89.9},
	{30, "callmeter", "Call Meter", "n/a", "no-sleep", 96.69},
	{31, "simplenote", "Simple Note", "50K+", "configuration", 98.8},
	{32, "nextcloud", "NextCloud", "50K+", "configuration", 99.3},
	{33, "artwatch", "ArtWatch", "5M+", "loop", 92.3},
	{34, "wadb", "WADB", "1M+", "no-sleep", 94.3},
	{35, "mfacebook", "MFacebook", "500K+", "loop", 99},
	{36, "kryptonite", "Kryptonite", "500+", "no-sleep", 97.2},
	{37, "flybsca", "Flybsca", "10K+", "configuration", 96.6},
	{38, "throughput", "Throughput", "n/a", "loop", 98.3},
	{39, "piano", "Piano", "n/a", "no-sleep", 98.3},
	{40, "fitdice", "Fitdice", "n/a", "configuration", 93.7},
}

// Catalog builds all 40 Table III apps. The case-study entries (3, 18,
// 28) use the hand-built models; the rest are generated.
func Catalog() ([]*App, error) {
	apps := make([]*App, 0, len(tableIII))
	for _, row := range tableIII {
		var (
			a   *App
			err error
		)
		switch row.id {
		case 3:
			a, err = K9Mail()
		case 18:
			a, err = Tinfoil()
		case 28:
			a, err = Wallabag()
		default:
			a, err = generate(row)
		}
		if err != nil {
			return nil, err
		}
		apps = append(apps, a)
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].ID < apps[j].ID })
	return apps, nil
}

// ByAppID returns the catalog app with the given identifier.
func ByAppID(appID string) (*App, error) {
	if appID == "opengps" {
		return OpenGPS()
	}
	for _, row := range tableIII {
		if row.appID != appID {
			continue
		}
		switch row.id {
		case 3:
			return K9Mail()
		case 18:
			return Tinfoil()
		case 28:
			return Wallabag()
		default:
			return generate(row)
		}
	}
	return byExtendedAppID(appID)
}

// CountByCause tallies the catalog's root causes (used by the baseline
// comparison). Note the paper's text says 21 apps have no-sleep ABDs
// while its own Table III lists 24; this reproduction follows the table.
func CountByCause() map[abd.Kind]int {
	counts := make(map[abd.Kind]int, 3)
	for _, row := range tableIII {
		k, err := abd.ParseKind(row.cause)
		if err != nil {
			continue // unreachable: table is static and covered by tests
		}
		counts[k]++
	}
	return counts
}
