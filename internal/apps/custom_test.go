package apps

import (
	"testing"

	"repro/internal/abd"
	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/trace"
)

func customParts() (*App, *apk.Package, android.BehaviorMap) {
	pkg := &apk.Package{
		AppID: "custom",
		Classes: []apk.Class{{
			Name: "LMain",
			Methods: []apk.Method{
				{Name: android.OnCreate, SourceLines: 10,
					Body: []apk.Instruction{{Op: apk.OpReturn}}},
				{Name: "onClick", SourceLines: 5,
					Body: []apk.Instruction{{Op: apk.OpReturn}}},
			},
		}},
	}
	behaviors := android.BehaviorMap{
		trace.EventKey{Class: "LMain", Callback: "onClick"}: {LatencyMS: 520},
	}
	a := &App{
		AppID: "custom", Name: "Custom", MainActivity: "LMain",
		BrowseActivities: []string{"LMain"},
		Widgets:          map[string][]string{"LMain": {"onClick"}},
		TriggerScript:    []android.Step{android.Tap("onClick")},
	}
	return a, pkg, behaviors
}

func TestNewCustomOK(t *testing.T) {
	a, pkg, b := customParts()
	built, err := NewCustom(a, pkg, b)
	if err != nil {
		t.Fatal(err)
	}
	if built.Package() != pkg {
		t.Error("package not wired")
	}
	// Fixed variant equals buggy for unknown faults, but is a copy.
	fixed := built.Behaviors(true)
	delete(fixed, trace.EventKey{Class: "LMain", Callback: "onClick"})
	if _, ok := built.Behaviors(true)[trace.EventKey{Class: "LMain", Callback: "onClick"}]; !ok {
		t.Error("fixed behaviors share storage with caller copy")
	}
}

func TestNewCustomValidation(t *testing.T) {
	if _, err := NewCustom(nil, nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}

	a, pkg, b := customParts()
	pkg.AppID = "" // invalid package
	if _, err := NewCustom(a, pkg, b); err == nil {
		t.Error("invalid package accepted")
	}

	a, pkg, b = customParts()
	a.Widgets["LMain"] = append(a.Widgets["LMain"], "onMissing")
	if _, err := NewCustom(a, pkg, b); err == nil {
		t.Error("dangling widget accepted")
	}

	a, pkg, b = customParts()
	a.TriggerScript = nil
	if _, err := NewCustom(a, pkg, b); err == nil {
		t.Error("missing trigger script accepted")
	}

	a, pkg, b = customParts()
	a.MainActivity = ""
	if _, err := NewCustom(a, pkg, b); err == nil {
		t.Error("missing main activity accepted")
	}
}

func TestFinishRejectsBadModels(t *testing.T) {
	// A fault whose trigger method does not exist in the APK.
	a, pkg, b := customParts()
	a.Fault = k9StyleFault("LMissing", "onResume")
	a.pkg = pkg
	a.behaviors = b
	if err := a.finish(); err == nil {
		t.Error("fault with missing trigger method accepted")
	}

	// A widget pointing at a method the APK lacks.
	a, pkg, b = customParts()
	a.Fault = k9StyleFault("LMain", android.OnCreate)
	a.pkg = pkg
	a.behaviors = b
	a.Widgets["LMain"] = []string{"onVanished"}
	if err := a.finish(); err == nil {
		t.Error("dangling widget accepted by finish")
	}
}

// k9StyleFault builds a minimal configuration fault for finish tests.
func k9StyleFault(cls, cb string) abd.Fault {
	return abd.Fault{
		Kind:         abd.Configuration,
		Trigger:      trace.EventKey{Class: cls, Callback: cb},
		ReleasePoint: trace.EventKey{Class: cls, Callback: android.OnPause},
		Resource:     "r",
		ConfigKey:    "k",
		ConfigValue:  "v",
		LoopSpec:     android.LoopSpec{PeriodMS: 1000, BurstMS: 500},
	}
}
