package apps

import (
	"fmt"
	"math/rand"

	"repro/internal/abd"
	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/trace"
)

// The generator builds a statistically plausible app from a Table III
// row: several browsable activities with lifecycle callbacks and widgets,
// a background service, plenty of non-event helper code (the bulk of the
// line count the diagnosis prunes away), and the row's ABD fault injected
// on a trigger surface that normal users never touch.

// widgetProfile classifies a widget's energy character.
type widgetProfile int

const (
	lightWidget  widgetProfile = iota + 1 // local UI work
	mediumWidget                          // CPU-bound processing
	heavyWidget                           // network fetch (refresh-style)
)

// lifecycleNames are the activity lifecycle callbacks every activity gets.
var lifecycleNames = []string{
	android.OnCreate, android.OnStart, android.OnRestart,
	android.OnResume, android.OnPause, android.OnStop, android.OnDestroy,
}

// addLifecycle appends lifecycle methods to a class and their behaviors
// to the map.
func addLifecycle(cls *apk.Class, b android.BehaviorMap, rng *rand.Rand) {
	for _, name := range lifecycleNames {
		lines := 6 + rng.Intn(18)
		// The callback blocks until its work completes, so the logged
		// event interval covers the power it causes (Step 1 maps power
		// samples onto event intervals by timestamp).
		usage := android.ComponentUsage{Component: trace.CPU, Level: 0.3, DurationMS: 520 + int64(rng.Intn(200))}
		if name == android.OnCreate {
			lines = 40 + rng.Intn(80)
			usage = android.ComponentUsage{Component: trace.CPU, Level: 0.5, DurationMS: 600 + int64(rng.Intn(300))}
		}
		latency := usage.DurationMS
		cls.Methods = append(cls.Methods, apk.Method{
			Name: name, SourceLines: lines,
			Body: []apk.Instruction{{Op: apk.OpWork}, {Op: apk.OpReturn}},
		})
		b[trace.EventKey{Class: cls.Name, Callback: name}] = android.Behavior{
			LatencyMS: latency,
			Usages:    []android.ComponentUsage{usage},
		}
	}
}

// addWidget appends a widget callback with the given profile.
func addWidget(cls *apk.Class, b android.BehaviorMap, name string, profile widgetProfile, rng *rand.Rand) {
	cls.Methods = append(cls.Methods, apk.Method{
		Name: name, SourceLines: 10 + rng.Intn(50),
		Body: []apk.Instruction{{Op: apk.OpWork}, {Op: apk.OpCall, Args: []string{"Landroid/view/View;->invalidate"}}, {Op: apk.OpReturn}},
	})
	// Widget callbacks block until their operation completes (a refresh
	// shows a spinner until the fetch is done), so the event interval
	// covers the operation's power draw.
	var behavior android.Behavior
	switch profile {
	case lightWidget:
		dur := 520 + int64(rng.Intn(400))
		behavior = android.Behavior{
			LatencyMS: dur,
			Usages: []android.ComponentUsage{
				{Component: trace.CPU, Level: 0.2 + rng.Float64()*0.15, DurationMS: dur},
			},
		}
	case mediumWidget:
		dur := 900 + int64(rng.Intn(1200))
		behavior = android.Behavior{
			LatencyMS: dur,
			Usages: []android.ComponentUsage{
				{Component: trace.CPU, Level: 0.45 + rng.Float64()*0.15, DurationMS: dur},
			},
		}
	case heavyWidget:
		dur := 2000 + int64(rng.Intn(2000))
		behavior = android.Behavior{
			LatencyMS: dur,
			Usages: []android.ComponentUsage{
				{Component: trace.WiFi, Level: 0.65 + rng.Float64()*0.25, DurationMS: dur},
				{Component: trace.CPU, Level: 0.3, DurationMS: dur},
			},
		}
	}
	b[trace.EventKey{Class: cls.Name, Callback: name}] = behavior
}

// addHelpers appends non-event methods: the code the diagnosis excludes.
func addHelpers(cls *apk.Class, count int, rng *rand.Rand) {
	for i := 0; i < count; i++ {
		cls.Methods = append(cls.Methods, apk.Method{
			Name:        fmt.Sprintf("helper%d", i),
			SourceLines: 60 + rng.Intn(220),
			Body: []apk.Instruction{
				{Op: apk.OpWork}, {Op: apk.OpWork}, {Op: apk.OpReturn},
			},
		})
	}
}

var browseNames = []string{
	"MainActivity", "ListActivity", "DetailActivity", "SearchActivity", "AboutActivity",
}

var widgetNames = []string{"onClick", "onItemClick", "onLongClick", "onTouch"}

// generate builds an App from a catalog row, deterministically in the
// row ID.
func generate(row catalogRow) (*App, error) {
	cause, err := abd.ParseKind(row.cause)
	if err != nil {
		return nil, fmt.Errorf("apps: row %d: %w", row.id, err)
	}
	rng := rand.New(rand.NewSource(int64(row.id)*7919 + 17))
	base := "Lcom/" + row.appID

	a := &App{
		ID:                 row.id,
		AppID:              row.appID,
		Name:               row.name,
		Downloads:          row.downloads,
		RootCause:          cause,
		PaperCodeReduction: row.paperPct,
		Widgets:            make(map[string][]string),
	}
	pkg := &apk.Package{AppID: row.appID}
	behaviors := android.BehaviorMap{}

	// Browsable activities.
	nAct := 3 + rng.Intn(3)
	for i := 0; i < nAct; i++ {
		clsName := base + "/" + browseNames[i]
		cls := apk.Class{Name: clsName}
		addLifecycle(&cls, behaviors, rng)
		nWidgets := 1 + rng.Intn(3)
		for w := 0; w < nWidgets; w++ {
			name := widgetNames[w]
			profile := widgetProfile(1 + rng.Intn(3))
			if i == 0 && w == 0 {
				profile = heavyWidget // every app has a refresh-style action
			}
			addWidget(&cls, behaviors, name, profile, rng)
			a.Widgets[clsName] = append(a.Widgets[clsName], name)
		}
		addHelpers(&cls, 2+rng.Intn(4), rng)
		pkg.Classes = append(pkg.Classes, cls)
		a.BrowseActivities = append(a.BrowseActivities, clsName)
	}
	a.MainActivity = a.BrowseActivities[0]

	// Background service with helper bulk.
	svc := apk.Class{Name: base + "/SyncService"}
	svc.Methods = append(svc.Methods,
		apk.Method{Name: android.OnCreate, SourceLines: 25 + rng.Intn(40),
			Body: []apk.Instruction{{Op: apk.OpWork}, {Op: apk.OpReturn}}},
		apk.Method{Name: android.OnDestroy, SourceLines: 10 + rng.Intn(20),
			Body: []apk.Instruction{{Op: apk.OpWork}, {Op: apk.OpReturn}}},
	)
	addHelpers(&svc, 3+rng.Intn(4), rng)
	pkg.Classes = append(pkg.Classes, svc)

	// The ABD trigger surface, outside the normal browse set.
	switch cause {
	case abd.NoSleep:
		trg := apk.Class{Name: base + "/TrackerActivity"}
		addLifecycle(&trg, behaviors, rng)
		addWidget(&trg, behaviors, "onClick", lightWidget, rng)
		addHelpers(&trg, 2+rng.Intn(3), rng)
		pkg.Classes = append(pkg.Classes, trg)

		comp, level := nosleepResource(rng)
		a.Fault = abd.Fault{
			Kind:         abd.NoSleep,
			Trigger:      trace.EventKey{Class: trg.Name, Callback: "onClick"},
			ReleasePoint: trace.EventKey{Class: trg.Name, Callback: android.OnPause},
			Resource:     comp.String() + "-hold",
			Component:    comp,
			Level:        level,
		}
		a.TriggerScript = []android.Step{
			android.Launch(a.MainActivity),
			android.Launch(trg.Name),
			android.Tap("onClick"),
			android.Home(),
		}
	case abd.Loop:
		trg := apk.Class{Name: base + "/FeedActivity"}
		addLifecycle(&trg, behaviors, rng)
		addWidget(&trg, behaviors, "onClick", lightWidget, rng)
		addHelpers(&trg, 2+rng.Intn(3), rng)
		pkg.Classes = append(pkg.Classes, trg)

		a.Fault = abd.Fault{
			Kind:         abd.Loop,
			Trigger:      trace.EventKey{Class: trg.Name, Callback: "onClick"},
			ReleasePoint: trace.EventKey{Class: trg.Name, Callback: android.OnPause},
			Resource:     "refresh-loop",
			LoopSpec: android.LoopSpec{
				PeriodMS: 1500 + int64(rng.Intn(2000)),
				BurstMS:  0, // set below as a high duty cycle

				Usages: []android.ComponentUsage{
					{Component: trace.WiFi, Level: 0.7 + rng.Float64()*0.2},
					{Component: trace.CPU, Level: 0.3 + rng.Float64()*0.2},
				},
			},
		}
		a.Fault.LoopSpec.BurstMS = a.Fault.LoopSpec.PeriodMS * (70 + int64(rng.Intn(25))) / 100
		a.TriggerScript = []android.Step{
			android.Launch(a.MainActivity),
			android.Launch(trg.Name),
			android.Tap("onClick"),
			android.Home(),
		}
	case abd.Configuration:
		trg := apk.Class{Name: base + "/SettingsActivity"}
		addLifecycle(&trg, behaviors, rng)
		addHelpers(&trg, 2+rng.Intn(3), rng)
		// The settings widget writes the bad configuration value.
		trg.Methods = append(trg.Methods, apk.Method{
			Name: "onClick", SourceLines: 12 + rng.Intn(30),
			Body: []apk.Instruction{
				{Op: apk.OpCall, Args: []string{"Landroid/content/SharedPreferences;->put"}},
				{Op: apk.OpReturn},
			},
		})
		behaviors[trace.EventKey{Class: trg.Name, Callback: "onClick"}] = android.Behavior{
			LatencyMS: 8,
			Effects: []android.Effect{{
				Kind: android.EffectSetConfig, ConfigKey: "syncIntervalSec", ConfigValue: "0",
			}},
		}
		pkg.Classes = append(pkg.Classes, trg)

		a.Fault = abd.Fault{
			Kind:         abd.Configuration,
			Trigger:      trace.EventKey{Class: a.MainActivity, Callback: android.OnResume},
			ReleasePoint: trace.EventKey{Class: a.MainActivity, Callback: android.OnPause},
			Resource:     "aggressive-sync",
			ConfigKey:    "syncIntervalSec",
			ConfigValue:  "0",
			LoopSpec: android.LoopSpec{
				PeriodMS: 2000 + int64(rng.Intn(2000)),
				BurstMS:  0, // set below as a high duty cycle

				Usages: []android.ComponentUsage{
					{Component: trace.WiFi, Level: 0.75 + rng.Float64()*0.15},
					{Component: trace.CPU, Level: 0.35 + rng.Float64()*0.2},
				},
			},
		}
		a.Fault.LoopSpec.BurstMS = a.Fault.LoopSpec.PeriodMS * (70 + int64(rng.Intn(25))) / 100
		a.TriggerScript = []android.Step{
			android.Launch(a.MainActivity),
			android.Launch(trg.Name),
			android.Tap("onClick"),
			android.Back(), // returning to Main fires onResume with the bad config
			android.Home(),
		}
	case abd.GPSNavigation:
		// Sustained-fix leak: starting turn-by-turn navigation pins the
		// GPS at full fix rate plus a route-recalculation loop; leaving
		// the navigation screen must stop both, the bug doesn't.
		trg := apk.Class{Name: base + "/NavigationActivity"}
		addLifecycle(&trg, behaviors, rng)
		addWidget(&trg, behaviors, "onClick", lightWidget, rng)
		addHelpers(&trg, 2+rng.Intn(3), rng)
		pkg.Classes = append(pkg.Classes, trg)

		a.Fault = abd.Fault{
			Kind:         abd.GPSNavigation,
			Trigger:      trace.EventKey{Class: trg.Name, Callback: "onClick"},
			ReleasePoint: trace.EventKey{Class: trg.Name, Callback: android.OnPause},
			Resource:     "navigation",
			Component:    trace.GPS,
			Level:        1,
			LoopSpec: android.LoopSpec{
				PeriodMS: 1200 + int64(rng.Intn(800)),
				BurstMS:  0, // set below as a moderate duty cycle
				Usages: []android.ComponentUsage{
					{Component: trace.CPU, Level: 0.35 + rng.Float64()*0.15},
				},
			},
		}
		a.Fault.LoopSpec.BurstMS = a.Fault.LoopSpec.PeriodMS * (55 + int64(rng.Intn(20))) / 100
		a.TriggerScript = []android.Step{
			android.Launch(a.MainActivity),
			android.Launch(trg.Name),
			android.Tap("onClick"),
			android.Home(),
		}
	case abd.MediaStream:
		// Decoder hold: starting playback keeps the audio pipeline and a
		// decode loop alive after the player screen is paused. No wakelock
		// is involved, so acquire/release static analysis sees nothing.
		trg := apk.Class{Name: base + "/PlayerActivity"}
		addLifecycle(&trg, behaviors, rng)
		addWidget(&trg, behaviors, "onClick", lightWidget, rng)
		addHelpers(&trg, 2+rng.Intn(3), rng)
		pkg.Classes = append(pkg.Classes, trg)

		a.Fault = abd.Fault{
			Kind:         abd.MediaStream,
			Trigger:      trace.EventKey{Class: trg.Name, Callback: "onClick"},
			ReleasePoint: trace.EventKey{Class: trg.Name, Callback: android.OnPause},
			Resource:     "playback",
			Component:    trace.Audio,
			Level:        0.8 + rng.Float64()*0.15,
			LoopSpec: android.LoopSpec{
				PeriodMS: 800 + int64(rng.Intn(600)),
				BurstMS:  0, // set below as a high duty cycle (steady decode)
				Usages: []android.ComponentUsage{
					{Component: trace.CPU, Level: 0.4 + rng.Float64()*0.15},
				},
			},
		}
		a.Fault.LoopSpec.BurstMS = a.Fault.LoopSpec.PeriodMS * (70 + int64(rng.Intn(20))) / 100
		a.TriggerScript = []android.Step{
			android.Launch(a.MainActivity),
			android.Launch(trg.Name),
			android.Tap("onClick"),
			android.Home(),
		}
	case abd.SyncStorm:
		// Alarm fan-out: enabling account sync schedules several repeating
		// alarms with staggered periods; the buggy variant never cancels
		// them at the release point.
		trg := apk.Class{Name: base + "/AccountsActivity"}
		addLifecycle(&trg, behaviors, rng)
		addWidget(&trg, behaviors, "onClick", lightWidget, rng)
		addHelpers(&trg, 2+rng.Intn(3), rng)
		pkg.Classes = append(pkg.Classes, trg)

		a.Fault = abd.Fault{
			Kind:         abd.SyncStorm,
			Trigger:      trace.EventKey{Class: trg.Name, Callback: "onClick"},
			ReleasePoint: trace.EventKey{Class: trg.Name, Callback: android.OnPause},
			Resource:     "accounts",
			FanOut:       3 + rng.Intn(3),
			LoopSpec: android.LoopSpec{
				PeriodMS: 1500 + int64(rng.Intn(1500)),
				BurstMS:  0, // set below as a moderate duty cycle
				Usages: []android.ComponentUsage{
					{Component: trace.WiFi, Level: 0.45 + rng.Float64()*0.2},
					{Component: trace.CPU, Level: 0.2 + rng.Float64()*0.15},
				},
			},
		}
		a.Fault.LoopSpec.BurstMS = a.Fault.LoopSpec.PeriodMS * (55 + int64(rng.Intn(25))) / 100
		a.TriggerScript = []android.Step{
			android.Launch(a.MainActivity),
			android.Launch(trg.Name),
			android.Tap("onClick"),
			android.Home(),
		}
	case abd.TailEnergy:
		// Chatty radio teardown: a presence ping keeps waking the cellular
		// radio, paying the tail energy on every transfer. The per-sample
		// deviation is deliberately weak (below eDelta's absolute 250 mW
		// threshold on every device profile) but lasts the whole session —
		// a weak-but-long drain only normalized detection catches.
		trg := apk.Class{Name: base + "/ChatActivity"}
		addLifecycle(&trg, behaviors, rng)
		addWidget(&trg, behaviors, "onClick", lightWidget, rng)
		addHelpers(&trg, 2+rng.Intn(3), rng)
		pkg.Classes = append(pkg.Classes, trg)

		a.Fault = abd.Fault{
			Kind:         abd.TailEnergy,
			Trigger:      trace.EventKey{Class: trg.Name, Callback: "onClick"},
			ReleasePoint: trace.EventKey{Class: trg.Name, Callback: android.OnPause},
			Resource:     "presence-ping",
			LoopSpec: android.LoopSpec{
				PeriodMS: 2500 + int64(rng.Intn(1000)),
				BurstMS:  0, // set below as a high duty cycle (radio tail)
				Usages: []android.ComponentUsage{
					{Component: trace.Cellular, Level: 0.18 + rng.Float64()*0.05},
				},
			},
		}
		a.Fault.LoopSpec.BurstMS = a.Fault.LoopSpec.PeriodMS * (75 + int64(rng.Intn(15))) / 100
		a.TriggerScript = []android.Step{
			android.Launch(a.MainActivity),
			android.Launch(trg.Name),
			android.Tap("onClick"),
			android.Home(),
		}
	}

	a.pkg = pkg
	a.behaviors = behaviors
	if err := a.finish(); err != nil {
		return nil, err
	}
	return a, nil
}

// nosleepResource picks which resource the generated no-sleep bug leaks.
func nosleepResource(rng *rand.Rand) (trace.Component, float64) {
	switch rng.Intn(4) {
	case 0:
		return trace.GPS, 1.0 // location listener never unregistered
	case 1:
		return trace.CPU, 0.5 // wakelock held with a busy worker
	case 2:
		return trace.Sensor, 0.9 // sensor listener never unregistered
	default:
		return trace.WiFi, 0.6 // radio held by an abandoned transfer
	}
}
