package apps

import (
	"fmt"
	"sort"
)

// extendedRows are the scenario-battery apps added on top of the
// paper's Table III, two per new root-cause family from Li et al.'s
// energy-issue taxonomy. They have no paper-reported code reduction
// (paperPct 0 renders as "n/a") — the matrix experiment measures them.
var extendedRows = []catalogRow{
	{41, "navtracker", "NavTracker", "1M+", "gps-navigation", 0},
	{42, "cyclemaps", "CycleMaps", "100K+", "gps-navigation", 0},
	{43, "podstream", "PodStream", "5M+", "media-stream", 0},
	{44, "radioloud", "RadioLoud", "500K+", "media-stream", 0},
	{45, "syncmania", "SyncMania", "100K+", "sync-storm", 0},
	{46, "notebridge", "NoteBridge", "50K+", "sync-storm", 0},
	{47, "chatterbox", "ChatterBox", "10M+", "tail-energy", 0},
	{48, "pingwall", "PingWall", "500K+", "tail-energy", 0},
}

// ExtendedCatalog builds the post-Table-III apps (IDs 41+). Catalog()
// stays exactly the paper's 40 rows; scenario-matrix callers combine
// both.
func ExtendedCatalog() ([]*App, error) {
	apps := make([]*App, 0, len(extendedRows))
	for _, row := range extendedRows {
		a, err := generate(row)
		if err != nil {
			return nil, err
		}
		apps = append(apps, a)
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].ID < apps[j].ID })
	return apps, nil
}

// byExtendedAppID resolves an extended-catalog app by identifier.
func byExtendedAppID(appID string) (*App, error) {
	for _, row := range extendedRows {
		if row.appID == appID {
			return generate(row)
		}
	}
	return nil, fmt.Errorf("apps: unknown app %q", appID)
}
