package core

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Step-1 cache metrics on the process registry, summed across every
// incremental analyzer in the process. Per-instance numbers (the ones
// the reconciliation invariant hits + misses == lookups is checked
// against) come from IncrementalAnalyzer.CacheStats.
var (
	mCacheLookups   = obs.Default.Counter("core_step1_cache_lookups_total", "step-1 cache lookups across all incremental analyzers")
	mCacheHits      = obs.Default.Counter("core_step1_cache_hits_total", "step-1 cache hits across all incremental analyzers")
	mCacheMisses    = obs.Default.Counter("core_step1_cache_misses_total", "step-1 cache misses across all incremental analyzers")
	mCacheEvictions = obs.Default.Counter("core_step1_cache_evictions_total", "step-1 cache LRU evictions across all incremental analyzers")
)

// DefaultStepCacheCap is the default bound on cached Step-1 outputs per
// incremental analyzer. One entry holds the analyzed events of one
// bundle, so the default comfortably covers the paper-scale corpora
// (tens of traces) and a production per-app working set, while keeping
// a hard ceiling on memory.
const DefaultStepCacheCap = 4096

// CacheStats is a snapshot of one step cache's counters. Every lookup
// lands in exactly one of Hits or Misses, so
//
//	Hits + Misses == Lookups
//
// holds at any quiescent point.
type CacheStats struct {
	// Capacity is the cache's entry bound; Size is the current count.
	Capacity int `json:"capacity"`
	Size     int `json:"size"`
	// Lookups, Hits, Misses count get operations since creation.
	Lookups int64 `json:"lookups"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	// Evictions counts entries dropped to respect Capacity.
	Evictions int64 `json:"evictions"`
}

// HitRate returns Hits/Lookups (0 when nothing was looked up).
func (s CacheStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// stepOneResult is one cached Step-1 outcome for a bundle content key:
// either the pristine analyzed trace or the deterministic Step-1 error
// (negative caching — a corrupt bundle stays corrupt, so its failure is
// as cacheable as a success).
type stepOneResult struct {
	at  *AnalyzedTrace
	err error
}

// stepCache is a concurrency-safe, bounded LRU of Step-1 outputs keyed
// by bundle content key. Cached AnalyzedTraces are pristine Step-1
// outputs and must never be handed to Steps 2–5 directly — callers
// clone them (AnalyzedTrace.cloneStepOne) so reports cannot alias
// cache state.
type stepCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // value: *cacheNode

	lookups, hits, misses, evictions int64
}

type cacheNode struct {
	key string
	res stepOneResult
}

// newStepCache builds a cache bounded to capacity entries (<= 0 means
// DefaultStepCacheCap).
func newStepCache(capacity int) *stepCache {
	if capacity <= 0 {
		capacity = DefaultStepCacheCap
	}
	return &stepCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the cached Step-1 result for key, marking it most
// recently used.
func (c *stepCache) get(key string) (stepOneResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	mCacheLookups.Inc()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		mCacheMisses.Inc()
		return stepOneResult{}, false
	}
	c.hits++
	mCacheHits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheNode).res, true
}

// put stores the Step-1 result for key as most recently used, evicting
// the least recently used entries beyond capacity.
func (c *stepCache) put(key string, res stepOneResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheNode).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheNode{key: key, res: res})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheNode).key)
		c.evictions++
		mCacheEvictions.Inc()
	}
}

// stats snapshots the cache counters.
func (c *stepCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:  c.capacity,
		Size:      c.ll.Len(),
		Lookups:   c.lookups,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
