package core_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// These tests pin the audited remove-then-re-add semantics of the
// incremental analyzer: re-adding the same content key restores the
// exact prior corpus *content* (with the key re-entering the insertion
// order at the end — its original slot is gone), the Step-1 cache
// absorbs the re-estimation whether the retained entry is positive or
// negative, and the report after every such move stays byte-identical
// to a fresh batch analysis of the corpus in the analyzer's own order.
// Verdict from the audit: non-bug — the order move is the documented
// cost of cancellation, and no stale summary or cache state leaks.

func readdCorpus(t *testing.T) []*trace.TraceBundle {
	t.Helper()
	app, err := apps.ByAppID("k9mail")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, 17)
	cfg.Users = 6
	cfg.BrowsePhases = 3
	res, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Bundles
}

// mustMatchBatch asserts the incremental report is byte-identical to a
// fresh batch analysis of the corpus in the analyzer's current order.
func mustMatchBatch(t *testing.T, cfg core.Config, ia *core.IncrementalAnalyzer) *core.Report {
	t.Helper()
	got, err := ia.Report()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.Analyze(ia.Bundles())
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("incremental report differs from batch analysis of the same corpus order (%d vs %d bytes)",
			len(gotJSON), len(wantJSON))
	}
	return got
}

// TestReAddSameWindowCancels: remove-then-re-add of the same content
// key before the next report cancels both pending ops — no summary
// churn, no cache lookup — but the key's corpus position moves to the
// end, and the report matches batch analysis of that new order.
func TestReAddSameWindowCancels(t *testing.T) {
	cfg := core.DefaultConfig()
	ia, err := core.NewIncrementalAnalyzer(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	bundles := readdCorpus(t)
	keys := make([]string, len(bundles))
	for i, b := range bundles {
		keys[i], _ = ia.Add(b)
	}
	if _, err := ia.Report(); err != nil {
		t.Fatal(err)
	}
	before := ia.CacheStats()

	if !ia.Remove(keys[0]) {
		t.Fatal("remove of present key reported absent")
	}
	if _, added := ia.Add(bundles[0]); !added {
		t.Fatal("re-add after remove reported duplicate")
	}
	mustMatchBatch(t, cfg, ia)

	after := ia.CacheStats()
	if after.Lookups != before.Lookups {
		t.Fatalf("canceled remove/re-add still looked up the cache: %d -> %d lookups", before.Lookups, after.Lookups)
	}
	got := ia.Keys()
	if got[len(got)-1] != keys[0] {
		t.Fatalf("re-added key is not at the end of the corpus order: %v", got)
	}
	if len(got) != len(keys) {
		t.Fatalf("corpus size changed: %d -> %d", len(keys), len(got))
	}
}

// TestReAddAcrossWindowsWarmHit: with a report (and so a summary
// retraction) between the remove and the re-add, the re-add must be a
// Step-1 cache hit — the retained entry absorbs the re-estimation —
// and the report must again match batch analysis.
func TestReAddAcrossWindowsWarmHit(t *testing.T) {
	cfg := core.DefaultConfig()
	ia, err := core.NewIncrementalAnalyzer(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	bundles := readdCorpus(t)
	keys := make([]string, len(bundles))
	for i, b := range bundles {
		keys[i], _ = ia.Add(b)
	}
	full := mustMatchBatch(t, cfg, ia)

	ia.Remove(keys[0])
	reduced := mustMatchBatch(t, cfg, ia)
	if reduced.TotalTraces != full.TotalTraces-1 {
		t.Fatalf("remove did not shrink the corpus: %d -> %d", full.TotalTraces, reduced.TotalTraces)
	}

	before := ia.CacheStats()
	ia.Add(bundles[0])
	restored := mustMatchBatch(t, cfg, ia)
	after := ia.CacheStats()
	if after.Misses != before.Misses {
		t.Fatalf("re-add of cached content missed the cache: %d -> %d misses", before.Misses, after.Misses)
	}
	if after.Hits != before.Hits+1 {
		t.Fatalf("re-add of cached content: %d -> %d hits, want +1", before.Hits, after.Hits)
	}
	if restored.TotalTraces != full.TotalTraces {
		t.Fatalf("re-add did not restore the corpus: %d traces, want %d", restored.TotalTraces, full.TotalTraces)
	}
}

// TestReAddAfterEviction: a tiny cache evicts the removed key's entry
// before the re-add; the re-add re-estimates (a miss) and the corpus
// state is still exactly restored.
func TestReAddAfterEviction(t *testing.T) {
	cfg := core.DefaultConfig()
	ia, err := core.NewIncrementalAnalyzer(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	bundles := readdCorpus(t)
	keys := make([]string, len(bundles))
	for i, b := range bundles {
		keys[i], _ = ia.Add(b)
	}
	if len(bundles) <= 3 {
		t.Fatalf("corpus too small (%d) to exercise eviction", len(bundles))
	}
	mustMatchBatch(t, cfg, ia) // fills the cache; keys[0]'s entry evicted by later adds

	ia.Remove(keys[0])
	mustMatchBatch(t, cfg, ia)

	before := ia.CacheStats()
	if before.Evictions == 0 {
		t.Fatal("tiny cache recorded no evictions")
	}
	ia.Add(bundles[0])
	mustMatchBatch(t, cfg, ia)
	after := ia.CacheStats()
	if after.Misses != before.Misses+1 {
		t.Fatalf("re-add after eviction: %d -> %d misses, want +1 (re-estimation)", before.Misses, after.Misses)
	}
}

// TestReAddNegativeEntry: a deterministically corrupt bundle's Step-1
// failure is cached too; remove-then-re-add of the corrupt content is
// a cache *hit* that restores the same skipped-trace report.
func TestReAddNegativeEntry(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SkipInvalidTraces = true
	ia, err := core.NewIncrementalAnalyzer(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	bundles := readdCorpus(t)
	for _, b := range bundles {
		ia.Add(b)
	}
	corrupt := *bundles[0]
	corrupt.Event.Device = "no-such-device"
	corrupt.Event.TraceID = corrupt.Event.TraceID + "-corrupt"
	corrupt.Key = "" // content changed; let the analyzer re-hash
	corruptKey, added := ia.Add(&corrupt)
	if !added {
		t.Fatal("corrupt bundle deduplicated against the pristine one")
	}

	full := mustMatchBatch(t, cfg, ia)
	if len(full.Skipped) != 1 {
		t.Fatalf("corrupt bundle not skipped: %d skipped traces", len(full.Skipped))
	}

	ia.Remove(corruptKey)
	reduced := mustMatchBatch(t, cfg, ia)
	if len(reduced.Skipped) != 0 {
		t.Fatalf("removed corrupt bundle still skipped: %+v", reduced.Skipped)
	}

	before := ia.CacheStats()
	ia.Add(&corrupt)
	restored := mustMatchBatch(t, cfg, ia)
	after := ia.CacheStats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("negative entry re-add: hits %d -> %d, misses %d -> %d; want a single hit",
			before.Hits, after.Hits, before.Misses, after.Misses)
	}
	if len(restored.Skipped) != 1 || restored.Skipped[0].TraceID != corrupt.Event.TraceID {
		t.Fatalf("re-added corrupt bundle not skipped again: %+v", restored.Skipped)
	}
}
