package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Incremental-analysis metrics on the process registry. The hit-rate
// and computed gauges describe the most recent Report; the histogram
// accumulates incremental re-analysis wall times so they can be
// compared against full-batch runs (core_analyses timings / the sweep
// benchmarks) on one dashboard.
var (
	mIncReports  = obs.Default.Counter("core_incremental_reports_total", "completed IncrementalAnalyzer.Report runs")
	hIncReport   = obs.Default.Histogram("core_incremental_report_seconds", "wall time of incremental re-analysis runs", nil)
	gIncHitRate  = obs.Default.Gauge("core_incremental_last_hit_rate", "step-1 cache hit rate of the most recent incremental report")
	gIncComputed = obs.Default.Gauge("core_incremental_last_step1_computed", "bundles needing fresh step-1 work in the most recent incremental report")
	gIncCorpus   = obs.Default.Gauge("core_incremental_corpus_bundles", "bundles currently in the most recently reported incremental corpus")
)

// cloneStepOne returns a fresh pristine Step-1 copy of the trace:
// identity fields and a deep copy of the Events vector, with every
// derived (Steps 2–5) field zero — exactly the state estimateEvents
// leaves a new trace in. Both directions of aliasing are severed: Steps
// 2–5 mutate only the clone (the cached original stays pristine), and a
// caller holding a long-lived served report cannot reach cache state
// through it.
func (at *AnalyzedTrace) cloneStepOne() *AnalyzedTrace {
	events := make([]EventPower, len(at.Events))
	copy(events, at.Events)
	var ids []uint32
	if at.keyIDs != nil {
		ids = make([]uint32, len(at.keyIDs))
		copy(ids, at.keyIDs)
	}
	return &AnalyzedTrace{
		TraceID: at.TraceID,
		UserID:  at.UserID,
		Device:  at.Device,
		Events:  events,
		keyIDs:  ids,
	}
}

// IncrementalAnalyzer maintains a mutable corpus and re-analyzes it
// incrementally: Step 1 (power estimation, per trace and pure in the
// bundle's content) is cached in a bounded LRU keyed by the bundle's
// content key, so a corpus change costs Step-1 work only for bundles
// never seen (or evicted), plus the corpus-wide Steps 2–5. Report is
// byte-identical to Analyzer.Analyze over the same bundles in the same
// order — both run the same finish path, and the differential harness
// (TestIncrementalMatchesBatch) pins the equivalence.
//
// All methods are safe for concurrent use. Report serializes against
// mutations: the report reflects exactly the corpus at its start.
type IncrementalAnalyzer struct {
	a *Analyzer

	mu      sync.Mutex
	order   []string // content keys in corpus (insertion) order
	bundles map[string]*trace.TraceBundle
	cache   *stepCache
}

// NewIncrementalAnalyzer validates the configuration and builds an
// incremental analyzer whose Step-1 cache holds up to cacheCap bundles
// (<= 0 means DefaultStepCacheCap).
func NewIncrementalAnalyzer(cfg Config, cacheCap int) (*IncrementalAnalyzer, error) {
	a, err := NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	return &IncrementalAnalyzer{
		a:       a,
		bundles: make(map[string]*trace.TraceBundle),
		cache:   newStepCache(cacheCap),
	}, nil
}

// bundleKey returns the bundle's dedup/cache key: the stamped content
// key when the uploader provided one (the collection server has already
// verified it against the content), else the content hash computed
// here.
func bundleKey(b *trace.TraceBundle) string {
	if b.Key != "" {
		return b.Key
	}
	return trace.ContentKey(b)
}

// Add appends the bundle to the corpus and returns its content key.
// Adding a bundle whose content is already in the corpus is a no-op
// (added == false): content-keyed deduplication makes re-delivery after
// a lost ack idempotent end to end.
func (ia *IncrementalAnalyzer) Add(b *trace.TraceBundle) (key string, added bool) {
	key = bundleKey(b)
	ia.mu.Lock()
	defer ia.mu.Unlock()
	if _, ok := ia.bundles[key]; ok {
		return key, false
	}
	ia.bundles[key] = b
	ia.order = append(ia.order, key)
	return key, true
}

// Remove deletes the bundle with the given content key from the corpus,
// reporting whether it was present. The Step-1 cache entry is kept (it
// is content-addressed, so a later re-add is a cache hit); the bounded
// LRU retires it if it stays cold.
func (ia *IncrementalAnalyzer) Remove(key string) bool {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	if _, ok := ia.bundles[key]; !ok {
		return false
	}
	delete(ia.bundles, key)
	for i, k := range ia.order {
		if k == key {
			ia.order = append(ia.order[:i:i], ia.order[i+1:]...)
			break
		}
	}
	return true
}

// Contains reports whether a bundle with the given content key is in
// the corpus.
func (ia *IncrementalAnalyzer) Contains(key string) bool {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	_, ok := ia.bundles[key]
	return ok
}

// Len returns the number of bundles in the corpus.
func (ia *IncrementalAnalyzer) Len() int {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	return len(ia.order)
}

// Keys returns the corpus's content keys in insertion order (a copy).
func (ia *IncrementalAnalyzer) Keys() []string {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	return append([]string(nil), ia.order...)
}

// CacheStats snapshots the Step-1 cache counters.
func (ia *IncrementalAnalyzer) CacheStats() CacheStats {
	return ia.cache.stats()
}

// Report re-analyzes the current corpus: Step 1 runs only for bundles
// missing from the cache (fanned out through the shared pool), Steps
// 2–5 run over the whole corpus, exactly as Analyzer.Analyze would.
// The returned report is detached from analyzer state — its traces are
// deep copies of the cached Step-1 outputs — so callers may hold or
// mutate it indefinitely (a served report outliving many re-analyses)
// without corrupting later reports.
func (ia *IncrementalAnalyzer) Report() (*Report, error) {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	if len(ia.order) == 0 {
		return nil, ErrNoTraces
	}
	start := time.Now()
	detail := ia.a.cfg.Tracer != nil
	tr := ia.a.cfg.Tracer
	if tr == nil {
		tr = obs.NewTracer()
	}
	root := tr.Start("analyze")
	s1 := root.Child("step1.estimate")

	bundles := make([]*trace.TraceBundle, len(ia.order))
	results := make([]stepOneResult, len(ia.order))
	var missing []int
	for i, key := range ia.order {
		bundles[i] = ia.bundles[key]
		if res, ok := ia.cache.get(key); ok {
			results[i] = res
		} else {
			missing = append(missing, i)
		}
	}
	// Fresh Step-1 work only for cache misses; each miss writes its own
	// slot, so the fan-out is deterministic under any worker count. The
	// worker closure never returns an error — failures are captured per
	// slot (and negatively cached) so the skip/fail decision below
	// mirrors stepOneAll exactly.
	_ = parallel.ForEach(ia.a.cfg.Parallelism, len(missing), func(j int) error {
		if detail {
			sp := s1.Child("step1.trace")
			defer sp.End()
		}
		i := missing[j]
		at, err := ia.a.estimateEvents(bundles[i])
		results[i] = stepOneResult{at: at, err: err}
		return nil
	})
	for _, i := range missing {
		ia.cache.put(ia.order[i], results[i])
	}
	rec1 := s1.End()

	traces := make([]*AnalyzedTrace, 0, len(results))
	var skipped []SkippedTrace
	for i, res := range results {
		switch {
		case res.err == nil:
			traces = append(traces, res.at.cloneStepOne())
		case ia.a.cfg.SkipInvalidTraces:
			skipped = append(skipped, SkippedTrace{
				Index:   i,
				TraceID: bundles[i].Event.TraceID,
				Reason:  res.err.Error(),
			})
		default:
			return nil, fmt.Errorf("trace %d (%s): %w", i, bundles[i].Event.TraceID, res.err)
		}
	}
	report, err := ia.a.finish(bundles, traces, skipped, root, rec1)
	if err != nil {
		return nil, err
	}
	mIncReports.Inc()
	hIncReport.Observe(time.Since(start).Seconds())
	gIncComputed.Set(float64(len(missing)))
	gIncCorpus.Set(float64(len(bundles)))
	if n := len(bundles); n > 0 {
		gIncHitRate.Set(float64(n-len(missing)) / float64(n))
	}
	return report, nil
}
