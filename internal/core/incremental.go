package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Incremental-analysis metrics on the process registry. The hit-rate
// and computed gauges describe the most recent Report; the histogram
// accumulates incremental re-analysis wall times so they can be
// compared against full-batch runs (core_analyses timings / the sweep
// benchmarks) on one dashboard.
var (
	mIncReports  = obs.Default.Counter("core_incremental_reports_total", "completed IncrementalAnalyzer.Report runs")
	hIncReport   = obs.Default.Histogram("core_incremental_report_seconds", "wall time of incremental re-analysis runs", nil)
	gIncHitRate  = obs.Default.Gauge("core_incremental_last_hit_rate", "step-1 cache hit rate of the most recent incremental report")
	gIncComputed = obs.Default.Gauge("core_incremental_last_step1_computed", "bundles needing fresh step-1 work in the most recent incremental report")
	gIncCorpus   = obs.Default.Gauge("core_incremental_corpus_bundles", "bundles currently in the most recently reported incremental corpus")
)

// cloneStepOne returns a fresh pristine Step-1 copy of the trace:
// identity fields and a deep copy of the Events vector, with every
// derived (Steps 2–5) field zero — exactly the state estimateEvents
// leaves a new trace in. Both directions of aliasing are severed: Steps
// 2–5 mutate only the clone (the cached original stays pristine), and a
// caller holding a long-lived served report cannot reach cache state
// through it.
func (at *AnalyzedTrace) cloneStepOne() *AnalyzedTrace {
	events := make([]EventPower, len(at.Events))
	copy(events, at.Events)
	var ids []uint32
	if at.keyIDs != nil {
		ids = make([]uint32, len(at.keyIDs))
		copy(ids, at.keyIDs)
	}
	return &AnalyzedTrace{
		TraceID: at.TraceID,
		UserID:  at.UserID,
		Device:  at.Device,
		Events:  events,
		keyIDs:  ids,
	}
}

// cloneSlice deep-copies a slice preserving nil-vs-empty: the JSON
// encodings differ (null vs []) and the differential harness
// byte-compares reports, so a clone must not promote one to the other.
func cloneSlice[T any](s []T) []T {
	if s == nil {
		return nil
	}
	out := make([]T, len(s))
	copy(out, s)
	return out
}

// cloneAnalyzed returns a fully detached deep copy of an analyzed trace
// including every derived Steps-2–5 vector, so a served report cannot
// alias (or be clobbered by) the incremental engine's master state.
func (at *AnalyzedTrace) cloneAnalyzed() *AnalyzedTrace {
	return &AnalyzedTrace{
		TraceID:        at.TraceID,
		UserID:         at.UserID,
		Device:         at.Device,
		Events:         cloneSlice(at.Events),
		Rank:           cloneSlice(at.Rank),
		NormPower:      cloneSlice(at.NormPower),
		Amplitude:      cloneSlice(at.Amplitude),
		Fence:          at.Fence,
		Manifestations: cloneSlice(at.Manifestations),
		WindowKeys:     cloneSlice(at.WindowKeys),
		keyIDs:         cloneSlice(at.keyIDs),
		windowIDs:      cloneSlice(at.windowIDs),
	}
}

// pendingOp is one queued corpus mutation awaiting application.
type pendingOp struct {
	key string // "" marks a canceled (tombstoned) op
	add bool
}

// IncrementalAnalyzer maintains a mutable corpus and re-analyzes it
// sublinearly. Step 1 (power estimation, per trace and pure in the
// bundle's content) is cached in a bounded LRU keyed by the bundle's
// content key; Steps 2–5 are served from per-event-key order-statistic
// summaries (see summaries.go) maintained under add/remove in
// O(E log N) per mutation, with normalization/detection re-run only for
// traces whose cross-trace inputs (key multisets, base powers) actually
// changed. Report is byte-identical to Analyzer.Analyze over the same
// bundles in the same order — the summary queries are bit-identical to
// the batch statistics and the remaining stages run the same code — and
// the differential harness (TestIncrementalMatchesBatch) pins the
// equivalence after every mutation.
//
// Add and Remove only queue the mutation (O(1) on the ingest path);
// Refresh or Report applies the queue. All methods are safe for
// concurrent use. Report serializes against mutations: the report
// reflects exactly the corpus at its start.
type IncrementalAnalyzer struct {
	a *Analyzer

	mu sync.Mutex
	// order holds content keys in corpus (insertion) order. Removal
	// tombstones the slot ("") instead of splicing, so Remove stays O(1)
	// on a 10k-bundle corpus; compactOrder rewrites the slice once
	// tombstones outnumber live keys, keeping walks amortized O(live).
	order      []string
	orderIdx   map[string]int // live key -> index in order
	tombstones int
	bundles    map[string]*trace.TraceBundle
	cache      *stepCache

	cs         *corpusState
	pending    []pendingOp
	pendingIdx map[string]int // key -> outstanding index in pending

	// Step-1 cache activity since the last Report, feeding the gauges.
	lookups, hits int64
	fresh         int
	// Stale-trace counts recomputed by the most recent Report.
	lastRankDirty, lastDetectDirty int
}

// NewIncrementalAnalyzer validates the configuration and builds an
// incremental analyzer whose Step-1 cache holds up to cacheCap bundles
// (<= 0 means DefaultStepCacheCap).
func NewIncrementalAnalyzer(cfg Config, cacheCap int) (*IncrementalAnalyzer, error) {
	a, err := NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	return &IncrementalAnalyzer{
		a:          a,
		orderIdx:   make(map[string]int),
		bundles:    make(map[string]*trace.TraceBundle),
		cache:      newStepCache(cacheCap),
		cs:         newCorpusState(),
		pendingIdx: make(map[string]int),
	}, nil
}

// bundleKey returns the bundle's dedup/cache key: the stamped content
// key when the uploader provided one (the collection server has already
// verified it against the content), else the content hash computed
// here.
func bundleKey(b *trace.TraceBundle) string {
	if b.Key != "" {
		return b.Key
	}
	return trace.ContentKey(b)
}

// queue records a corpus mutation for key. An outstanding opposite op
// cancels instead of stacking: the corpus is content-keyed, so
// remove-then-re-add restores the exact prior state and both ops can be
// dropped. The invariant this preserves — at most one outstanding op
// per key, and its direction always flips the key's applied state —
// is what lets applyAdd/applyRemove skip existence re-checks.
func (ia *IncrementalAnalyzer) queue(key string, add bool) {
	if i, ok := ia.pendingIdx[key]; ok {
		ia.pending[i].key = ""
		delete(ia.pendingIdx, key)
		return
	}
	ia.pendingIdx[key] = len(ia.pending)
	ia.pending = append(ia.pending, pendingOp{key: key, add: add})
}

// applyLocked drains the pending mutation queue into the applied corpus
// state. Callers hold ia.mu.
func (ia *IncrementalAnalyzer) applyLocked() {
	if len(ia.pending) == 0 {
		return
	}
	for _, op := range ia.pending {
		if op.key == "" {
			continue
		}
		// Delete per key rather than clear()ing after the loop: a map
		// clear zeroes the whole table, whose capacity is the historical
		// high-water mark (the initial bulk load), turning every later
		// one-bundle Refresh into an O(N) sweep.
		delete(ia.pendingIdx, op.key)
		if op.add {
			ia.applyAdd(op.key)
		} else {
			ia.applyRemove(op.key)
		}
	}
	clear(ia.pending) // release key refs; O(ops drained), not O(cap)
	ia.pending = ia.pending[:0]
}

// Refresh applies all pending corpus mutations to the per-key summaries
// without producing a report: O(E log N) per mutation. Ingest paths
// that want bounded-latency adds call Add then Refresh; paths that only
// care about the next Report can skip it (Report refreshes first).
func (ia *IncrementalAnalyzer) Refresh() {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	ia.applyLocked()
}

// Add appends the bundle to the corpus and returns its content key.
// Adding a bundle whose content is already in the corpus is a no-op
// (added == false): content-keyed deduplication makes re-delivery after
// a lost ack idempotent end to end. The summary update is deferred to
// the next Refresh or Report.
func (ia *IncrementalAnalyzer) Add(b *trace.TraceBundle) (key string, added bool) {
	key = bundleKey(b)
	ia.mu.Lock()
	defer ia.mu.Unlock()
	if _, ok := ia.bundles[key]; ok {
		return key, false
	}
	ia.bundles[key] = b
	ia.orderIdx[key] = len(ia.order)
	ia.order = append(ia.order, key)
	ia.queue(key, true)
	return key, true
}

// Remove deletes the bundle with the given content key from the corpus,
// reporting whether it was present. The Step-1 cache entry is kept (it
// is content-addressed, so a later re-add is a cache hit); the bounded
// LRU retires it if it stays cold. The summary retraction is deferred
// to the next Refresh or Report.
func (ia *IncrementalAnalyzer) Remove(key string) bool {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	if _, ok := ia.bundles[key]; !ok {
		return false
	}
	delete(ia.bundles, key)
	ia.order[ia.orderIdx[key]] = ""
	delete(ia.orderIdx, key)
	ia.tombstones++
	if ia.tombstones > len(ia.bundles) {
		ia.compactOrder()
	}
	ia.queue(key, false)
	return true
}

// compactOrder rewrites ia.order without tombstones and reindexes the
// surviving keys. Insertion order of live keys is preserved, so the
// corpus order a Report sees is unchanged.
func (ia *IncrementalAnalyzer) compactOrder() {
	live := ia.order[:0]
	for _, k := range ia.order {
		if k == "" {
			continue
		}
		ia.orderIdx[k] = len(live)
		live = append(live, k)
	}
	clear(ia.order[len(live):]) // release key refs in the trimmed tail
	ia.order = live
	ia.tombstones = 0
}

// Contains reports whether a bundle with the given content key is in
// the corpus.
func (ia *IncrementalAnalyzer) Contains(key string) bool {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	_, ok := ia.bundles[key]
	return ok
}

// Len returns the number of bundles in the corpus.
func (ia *IncrementalAnalyzer) Len() int {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	return len(ia.bundles)
}

// Bundles returns the corpus's bundles in insertion order (a fresh
// slice; the bundles themselves are shared and treated as immutable
// everywhere in the pipeline). It is the read side what-if analyses are
// built on: a caller can run a fresh Analyzer with different knobs over
// exactly the served corpus without touching this analyzer's caches,
// summaries, or pending mutations.
func (ia *IncrementalAnalyzer) Bundles() []*trace.TraceBundle {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	out := make([]*trace.TraceBundle, 0, len(ia.bundles))
	for _, k := range ia.order {
		if k != "" {
			out = append(out, ia.bundles[k])
		}
	}
	return out
}

// Keys returns the corpus's content keys in insertion order (a copy).
func (ia *IncrementalAnalyzer) Keys() []string {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	keys := make([]string, 0, len(ia.bundles))
	for _, k := range ia.order {
		if k != "" {
			keys = append(keys, k)
		}
	}
	return keys
}

// CacheStats snapshots the Step-1 cache counters.
func (ia *IncrementalAnalyzer) CacheStats() CacheStats {
	return ia.cache.stats()
}

// Report re-analyzes the current corpus: pending mutations are applied
// to the per-key summaries, then only the traces whose ranks or bases
// went stale are recomputed — exactly as Analyzer.Analyze would compute
// them, byte for byte. The returned report is detached from analyzer
// state — its traces are deep copies — so callers may hold or mutate it
// indefinitely (a served report outliving many re-analyses) without
// corrupting later reports.
func (ia *IncrementalAnalyzer) Report() (*Report, error) {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	start := time.Now()
	tr := ia.a.cfg.Tracer
	if tr == nil {
		tr = obs.NewTracer()
	}
	root := tr.Start("analyze")
	s1 := root.Child("step1.estimate")
	ia.applyLocked()
	if len(ia.bundles) == 0 {
		s1.End()
		root.End()
		return nil, ErrNoTraces
	}
	if ia.cs.tainted > 0 {
		// Non-finite powers cannot live in the summaries; replay the
		// full batch finish so degenerate corpora keep the batch
		// pipeline's exact error behavior.
		return ia.reportFullLocked(start, root, s1)
	}
	rec1 := s1.End()

	// Partition the corpus into analyzable entries and skipped traces,
	// mirroring stepOneAll's slot scan (including strict-mode errors on
	// the lowest failing index).
	entries := make([]*traceEntry, 0, len(ia.bundles))
	var skipped []SkippedTrace
	idx := 0 // batch position: live keys only, tombstones invisible
	for _, key := range ia.order {
		if key == "" {
			continue
		}
		e := ia.cs.entries[key]
		if e.err != nil {
			if !ia.a.cfg.SkipInvalidTraces {
				return nil, fmt.Errorf("trace %d (%s): %w", idx, e.traceID, e.err)
			}
			skipped = append(skipped, SkippedTrace{Index: idx, TraceID: e.traceID, Reason: e.err.Error()})
			idx++
			continue
		}
		entries = append(entries, e)
		idx++
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("core: all %d traces invalid (first: %s)", len(ia.bundles), skipped[0].Reason)
	}

	// Step 2: re-rank only traces whose key multisets changed.
	s2 := root.Child("step2.rank")
	rankDirty := 0
	for _, e := range entries {
		if e.rankStale(ia.cs) {
			ia.refreshRanks(e)
			rankDirty++
		}
	}
	rec2 := s2.End()

	// Step 3: re-normalize only traces whose base powers changed.
	s3 := root.Child("step3.normalize")
	var detectDirty []*traceEntry
	for _, e := range entries {
		if e.baseStale(ia.cs) {
			ia.a.normalize(e.at, ia.cs.base)
			detectDirty = append(detectDirty, e)
		}
	}
	rec3 := s3.End()

	// Step 4: re-detect the same traces, in corpus order so a detection
	// error surfaces for the same trace the batch fan-out would pick
	// (its lowest-index error; a failing trace is always stale because
	// errors never stamp).
	s4 := root.Child("step4.detect")
	for _, e := range detectDirty {
		if err := ia.refreshDetect(e); err != nil {
			return nil, fmt.Errorf("trace %s: %w", e.at.TraceID, err)
		}
	}
	rec4 := s4.End()

	report := &Report{
		TotalTraces:    len(entries),
		ImpactedTraces: ia.cs.impactedTraces,
		Skipped:        skipped,
	}
	for _, key := range ia.order {
		if key == "" {
			continue
		}
		if b := ia.bundles[key]; b.Event.AppID != "" {
			report.AppID = b.Event.AppID
			break
		}
	}
	traces := make([]*AnalyzedTrace, len(entries))
	for i, e := range entries {
		traces[i] = e.at.cloneAnalyzed()
	}
	report.Traces = traces

	// Step 5: the impact table from the maintained membership counts,
	// assembled and sorted by the same code as the batch finish.
	s5 := root.Child("step5.impacts")
	report.Impacted = ia.a.impactsFromCounts(ia.cs.impact, report.TotalTraces)
	rec5 := s5.End()
	recTotal := root.End()

	report.Stages = []StageTiming{
		{Step: 1, Name: "estimate", Wall: rec1.Wall(), CPU: rec1.CPU(), Items: len(ia.bundles)},
		{Step: 2, Name: "rank", Wall: rec2.Wall(), CPU: rec2.CPU(), Items: rankDirty},
		{Step: 3, Name: "normalize", Wall: rec3.Wall(), CPU: rec3.CPU(), Items: len(detectDirty)},
		{Step: 4, Name: "detect", Wall: rec4.Wall(), CPU: rec4.CPU(), Items: len(detectDirty)},
		{Step: 5, Name: "impacts", Wall: rec5.Wall(), CPU: rec5.CPU(), Items: len(report.Impacted)},
		{Step: 0, Name: "total", Wall: recTotal.Wall(), CPU: recTotal.CPU(), Items: len(entries)},
	}
	ia.lastRankDirty, ia.lastDetectDirty = rankDirty, len(detectDirty)

	mAnalyses.Inc()
	mTracesAnalyzed.Add(int64(len(entries)))
	mTracesSkipped.Add(int64(len(skipped)))
	gSkippedLast.Set(float64(len(skipped)))
	ia.finishReportMetrics(start, len(ia.bundles))
	return report, nil
}

// finishReportMetrics updates the incremental gauges from the Step-1
// activity accumulated since the last report and resets the counters.
func (ia *IncrementalAnalyzer) finishReportMetrics(start time.Time, corpus int) {
	mIncReports.Inc()
	hIncReport.Observe(time.Since(start).Seconds())
	gIncComputed.Set(float64(ia.fresh))
	gIncCorpus.Set(float64(corpus))
	if ia.lookups > 0 {
		gIncHitRate.Set(float64(ia.hits) / float64(ia.lookups))
	} else {
		gIncHitRate.Set(1)
	}
	ia.fresh, ia.lookups, ia.hits = 0, 0, 0
}

// reportFullLocked is the full-replay fallback: Step 1 for the whole
// corpus through the cache, then the batch finish — the executable spec
// the sublinear path is differentially tested against. It serves
// corpora the summaries cannot represent (non-finite Step-1 powers) so
// their batch-identical error behavior is preserved.
func (ia *IncrementalAnalyzer) reportFullLocked(start time.Time, root, s1 *obs.Span) (*Report, error) {
	detail := ia.a.cfg.Tracer != nil
	n := len(ia.bundles)
	bundles := make([]*trace.TraceBundle, 0, n)
	keys := make([]string, 0, n)
	results := make([]stepOneResult, n)
	var missing []int
	for _, key := range ia.order {
		if key == "" {
			continue
		}
		i := len(bundles)
		bundles = append(bundles, ia.bundles[key])
		keys = append(keys, key)
		if res, ok := ia.cache.get(key); ok {
			results[i] = res
		} else {
			missing = append(missing, i)
		}
	}
	ia.lookups += int64(n)
	ia.hits += int64(n - len(missing))
	ia.fresh += len(missing)
	// Fresh Step-1 work only for cache misses; each miss writes its own
	// slot, so the fan-out is deterministic under any worker count. The
	// worker closure never returns an error — failures are captured per
	// slot (and negatively cached) so the skip/fail decision below
	// mirrors stepOneAll exactly.
	_ = parallel.ForEach(ia.a.cfg.Parallelism, len(missing), func(j int) error {
		if detail {
			sp := s1.Child("step1.trace")
			defer sp.End()
		}
		i := missing[j]
		at, err := ia.a.estimateEvents(bundles[i])
		results[i] = stepOneResult{at: at, err: err}
		return nil
	})
	for _, i := range missing {
		ia.cache.put(keys[i], results[i])
	}
	rec1 := s1.End()

	traces := make([]*AnalyzedTrace, 0, len(results))
	var skipped []SkippedTrace
	for i, res := range results {
		switch {
		case res.err == nil:
			traces = append(traces, res.at.cloneStepOne())
		case ia.a.cfg.SkipInvalidTraces:
			skipped = append(skipped, SkippedTrace{
				Index:   i,
				TraceID: bundles[i].Event.TraceID,
				Reason:  res.err.Error(),
			})
		default:
			return nil, fmt.Errorf("trace %d (%s): %w", i, bundles[i].Event.TraceID, res.err)
		}
	}
	report, err := ia.a.finish(bundles, traces, skipped, root, rec1)
	if err != nil {
		return nil, err
	}
	ia.lastRankDirty, ia.lastDetectDirty = len(traces), len(traces)
	ia.finishReportMetrics(start, len(bundles))
	return report, nil
}
