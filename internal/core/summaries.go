package core

import (
	"math"

	"repro/internal/stats/orderstat"
)

// This file is the sublinear re-analysis engine behind
// IncrementalAnalyzer: per-event-key order-statistic summaries plus
// epoch-stamped dirty tracking, so a corpus mutation costs O(E log N)
// summary maintenance (E = events in the touched bundle) instead of the
// corpus-wide counting sort, and a Report only recomputes the traces
// whose cross-trace inputs actually changed.
//
// Exactness contract: every number the exact path produces comes from
// the same code the batch finish runs — orderstat.FracRank/Percentile
// are bit-identical to stats.Ranks/stats.Percentile (pinned in
// internal/stats/orderstat), normalization and detection call the very
// same Analyzer.normalize/Analyzer.detect, and the impact table is
// assembled by the shared impactsFromCounts. The differential harness
// (TestIncrementalMatchesBatch) byte-compares the two paths after every
// mutation.
//
// Dirty-set propagation rules:
//
//   - A trace's Rank column depends on the full power multiset of every
//     key it contains. Each key carries msetEpoch, bumped on any
//     add/remove touching its multiset; a trace whose per-key rank
//     stamps lag any msetEpoch is re-ranked.
//   - NormPower (and everything downstream: Amplitude, Fence,
//     Manifestations, WindowKeys, impact membership) depends only on
//     the *value* of each key's base power. baseEpoch is bumped only
//     when the recomputed percentile actually changes, so a mutation
//     that shifts a key's multiset without moving its 10th percentile
//     re-ranks but does not re-detect.
//
// Traces with non-finite Step-1 powers cannot enter the summaries
// (orderstat rejects non-finite values by design); while any such trace
// is in the corpus the analyzer falls back to the full finish path,
// which reproduces the batch pipeline's error behavior exactly.

// traceEntry is the applied per-trace state of the incremental corpus.
type traceEntry struct {
	key     string
	traceID string
	// err is the trace's terminal Step-1 error; when set the trace is
	// skipped (or fails the corpus under strict mode) and the remaining
	// fields stay zero.
	err error
	// at is the master analyzed trace: Step-1 events plus the most
	// recently refreshed Steps-2–4 vectors. Reports hand out deep
	// clones, never the master.
	at *AnalyzedTrace
	// ids are the distinct interned key IDs occurring in this trace —
	// the stamp vectors below are indexed parallel to it.
	ids []uint32
	// rankStamp[j] is msetEpoch[ids[j]] as of the last rank refresh;
	// nil (or short) means rank-stale.
	rankStamp []uint64
	// baseStamp[j] is baseEpoch[ids[j]] as of the last successful
	// detect refresh; nil (or short) means detect-stale.
	baseStamp []uint64
	// contributed are the windowIDs currently counted into
	// corpusState.impact for this trace.
	contributed []uint32
	// manifested mirrors len(at.Manifestations) > 0 as counted into
	// corpusState.impactedTraces.
	manifested bool
	// nonFinite marks a trace whose Step-1 powers contain NaN/Inf; it
	// taints the corpus onto the full-finish fallback path.
	nonFinite bool
}

// corpusState is the applied incremental corpus: per-key summaries and
// bases in flat columns indexed by the analyzer's dense interned IDs,
// plus the per-trace entries and the maintained Step-5 aggregates.
type corpusState struct {
	entries map[string]*traceEntry

	// Per-interned-ID columns; grown monotonically to the interner's
	// size as new keys appear.
	sums      []*orderstat.Multiset
	msetEpoch []uint64
	base      []float64
	baseEpoch []uint64
	impact    []int // window-membership count, the Step-5 input

	// impactedTraces counts applied traces with >= 1 manifestation.
	impactedTraces int
	// tainted counts applied traces with non-finite Step-1 powers.
	tainted int

	// touched/touchedAt dedupe the IDs hit by one mutation without a
	// per-mutation map: touchedAt[id] == serial marks id as collected.
	touched   []uint32
	touchedAt []uint64
	serial    uint64
}

func newCorpusState() *corpusState {
	return &corpusState{entries: make(map[string]*traceEntry)}
}

// grow extends the per-ID columns to cover k interned keys.
func (cs *corpusState) grow(k int) {
	for len(cs.sums) < k {
		cs.sums = append(cs.sums, nil)
		cs.msetEpoch = append(cs.msetEpoch, 0)
		cs.base = append(cs.base, 0)
		cs.baseEpoch = append(cs.baseEpoch, 0)
		cs.impact = append(cs.impact, 0)
		cs.touchedAt = append(cs.touchedAt, 0)
	}
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// applyAdd materializes the pending addition of key: Step 1 through the
// content-keyed cache, per-key summary insertion for every event power,
// base refresh for the touched keys, and an eager rank+detect refresh of
// the new trace itself (its vectors are fully determined by the
// post-mutation summaries, so computing them now keeps Report's dirty
// scan from always finding at least one stale trace).
func (ia *IncrementalAnalyzer) applyAdd(key string) {
	cs := ia.cs
	if _, ok := cs.entries[key]; ok {
		// Unreachable under the pending-queue cancellation invariant
		// (an applied key only ever has a pending *remove*); degrade
		// gracefully rather than double-count.
		ia.applyRemove(key)
	}
	b := ia.bundles[key]
	if b == nil {
		return // canceled add; unreachable, see queue()
	}
	res, ok := ia.cache.get(key)
	ia.lookups++
	if ok {
		ia.hits++
	} else {
		at, err := ia.a.estimateEvents(b)
		res = stepOneResult{at: at, err: err}
		ia.cache.put(key, res)
		ia.fresh++
	}
	e := &traceEntry{key: key, traceID: b.Event.TraceID}
	cs.entries[key] = e
	if res.err != nil {
		e.err = res.err
		return
	}
	e.at = res.at.cloneStepOne()
	for i := range e.at.Events {
		if !isFinite(e.at.Events[i].PowerMW) {
			e.nonFinite = true
		}
	}
	if e.nonFinite {
		cs.tainted++
		return
	}
	ia.a.ensureKeyIDs(e.at)
	cs.grow(ia.a.keys.Len())
	cs.serial++
	cs.touched = cs.touched[:0]
	for i, id := range e.at.keyIDs {
		if cs.touchedAt[id] != cs.serial {
			cs.touchedAt[id] = cs.serial
			cs.touched = append(cs.touched, id)
		}
		if cs.sums[id] == nil {
			cs.sums[id] = &orderstat.Multiset{}
		}
		// Add cannot fail: the powers were just checked finite.
		_ = cs.sums[id].Add(e.at.Events[i].PowerMW)
	}
	e.ids = append([]uint32(nil), cs.touched...)
	for _, id := range e.ids {
		cs.msetEpoch[id]++
		ia.updateBase(id)
	}
	ia.refreshRanks(e)
	ia.a.normalize(e.at, cs.base)
	// A detect failure here is deliberately swallowed: the entry stays
	// detect-stale, so the next Report recomputes it in corpus order and
	// surfaces the error exactly where the batch pipeline would.
	_ = ia.refreshDetect(e)
}

// applyRemove retracts key's applied state: summary deletions, base
// refresh for the touched keys, and withdrawal of the trace's Step-5
// contributions.
func (ia *IncrementalAnalyzer) applyRemove(key string) {
	cs := ia.cs
	e := cs.entries[key]
	if e == nil {
		return // unreachable under the queue invariant
	}
	delete(cs.entries, key)
	if e.err != nil {
		return
	}
	if e.nonFinite {
		cs.tainted--
		return
	}
	for i, id := range e.at.keyIDs {
		cs.sums[id].Remove(e.at.Events[i].PowerMW)
	}
	for _, id := range e.ids {
		cs.msetEpoch[id]++
		ia.updateBase(id)
	}
	for _, id := range e.contributed {
		cs.impact[id]--
	}
	if e.manifested {
		cs.impactedTraces--
	}
}

// updateBase recomputes key id's normalization base from its summary and
// bumps baseEpoch only when the value moved — the load-bearing half of
// the dirty-set rules: an unchanged base keeps every dependent trace's
// detection fresh.
func (ia *IncrementalAnalyzer) updateBase(id uint32) {
	cs := ia.cs
	var nb float64
	if s := cs.sums[id]; s != nil && s.Len() > 0 {
		v, err := s.Percentile(ia.a.cfg.NormBasePercentile)
		if err != nil {
			// Unreachable: the summary holds only finite values and the
			// percentile is validated at config time. Degrade to the
			// batch absent-key semantics (base 0 => raw-power fallback).
			v = 0
		}
		nb = v
	}
	if nb != cs.base[id] {
		cs.base[id] = nb
		cs.baseEpoch[id]++
	}
}

// rankStale reports whether any key multiset this trace ranks against
// changed since its last rank refresh.
func (e *traceEntry) rankStale(cs *corpusState) bool {
	if len(e.rankStamp) != len(e.ids) {
		return true
	}
	for j, id := range e.ids {
		if e.rankStamp[j] != cs.msetEpoch[id] {
			return true
		}
	}
	return false
}

// baseStale reports whether any base power this trace normalizes
// against changed since its last successful detect refresh.
func (e *traceEntry) baseStale(cs *corpusState) bool {
	if len(e.baseStamp) != len(e.ids) {
		return true
	}
	for j, id := range e.ids {
		if e.baseStamp[j] != cs.baseEpoch[id] {
			return true
		}
	}
	return false
}

// refreshRanks recomputes the trace's Step-2 rank column from the
// per-key summaries. FracRank is bit-identical to the batch tied-block
// mean, so the column matches rankAndBase exactly.
func (ia *IncrementalAnalyzer) refreshRanks(e *traceEntry) {
	cs := ia.cs
	at := e.at
	// Fresh allocation, mirroring rankAndBase: the master's previous
	// column may still back an earlier report's clone source.
	at.Rank = make([]float64, len(at.Events))
	for i, id := range at.keyIDs {
		fr, err := cs.sums[id].FracRank(at.Events[i].PowerMW)
		if err != nil {
			// Unreachable: this trace's own instances are in the summary.
			fr = 0
		}
		at.Rank[i] = fr
	}
	if cap(e.rankStamp) < len(e.ids) {
		e.rankStamp = make([]uint64, len(e.ids))
	}
	e.rankStamp = e.rankStamp[:len(e.ids)]
	for j, id := range e.ids {
		e.rankStamp[j] = cs.msetEpoch[id]
	}
}

// refreshDetect re-runs Step 4 on an already-normalized trace and folds
// the trace's new Step-5 contributions into the maintained aggregates.
// The caller must have run Analyzer.normalize against cs.base first. On
// error nothing is stamped, so the trace stays detect-stale and the
// error reproduces on the next Report.
func (ia *IncrementalAnalyzer) refreshDetect(e *traceEntry) error {
	cs := ia.cs
	at := e.at
	if err := ia.a.detect(at); err != nil {
		return err
	}
	for _, id := range e.contributed {
		cs.impact[id]--
	}
	e.contributed = append(e.contributed[:0], at.windowIDs...)
	for _, id := range e.contributed {
		cs.impact[id]++
	}
	man := len(at.Manifestations) > 0
	if man != e.manifested {
		if man {
			cs.impactedTraces++
		} else {
			cs.impactedTraces--
		}
		e.manifested = man
	}
	if cap(e.baseStamp) < len(e.ids) {
		e.baseStamp = make([]uint64, len(e.ids))
	}
	e.baseStamp = e.baseStamp[:len(e.ids)]
	for j, id := range e.ids {
		e.baseStamp[j] = cs.baseEpoch[id]
	}
	return nil
}

// SummaryStats is a snapshot of the incremental engine's summary state,
// exported for the observability gauges and the thrash tests' leak
// detection.
type SummaryStats struct {
	// Keys is the number of event keys with a non-empty power summary.
	Keys int `json:"keys"`
	// Values is the total power samples across all summaries (one per
	// event instance in the applied corpus).
	Values int `json:"values"`
	// Nodes is the total distinct-value tree nodes — the thrash tests'
	// leak detector: returning to the same corpus must return to the
	// same node count.
	Nodes int `json:"nodes"`
	// Bytes is the retained summary arena memory.
	Bytes int `json:"bytes"`
	// PendingMutations is the add/remove queue depth not yet applied.
	PendingMutations int `json:"pendingMutations"`
	// TaintedTraces counts applied traces with non-finite powers (the
	// corpus analyzes via the full fallback path while > 0).
	TaintedTraces int `json:"taintedTraces"`
	// RankDirtyTraces / DetectDirtyTraces are the stale-trace counts
	// recomputed by the most recent Report.
	RankDirtyTraces   int `json:"rankDirtyTraces"`
	DetectDirtyTraces int `json:"detectDirtyTraces"`
}

// SummaryStats snapshots the per-key summary and dirty-set state.
func (ia *IncrementalAnalyzer) SummaryStats() SummaryStats {
	ia.mu.Lock()
	defer ia.mu.Unlock()
	st := SummaryStats{
		TaintedTraces:     ia.cs.tainted,
		RankDirtyTraces:   ia.lastRankDirty,
		DetectDirtyTraces: ia.lastDetectDirty,
	}
	for _, op := range ia.pending {
		if op.key != "" {
			st.PendingMutations++
		}
	}
	for _, s := range ia.cs.sums {
		if s == nil {
			continue
		}
		if s.Len() > 0 {
			st.Keys++
		}
		st.Values += s.Len()
		st.Nodes += s.Nodes()
		st.Bytes += s.Bytes()
	}
	return st
}
