package core_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/workload"
)

// update regenerates the golden report files instead of comparing:
//
//	go test ./internal/core -run TestGoldenReports -update
//
// Regenerate only when an intentional algorithm change shifts the
// reports, and review the golden diff like code.
var update = flag.Bool("update", false, "rewrite the golden report files under testdata/golden")

// goldenSeed fixes the corpus generation for the golden reports.
const goldenSeed = 2020

// goldenCases pins one corpus per app archetype: the K-9 Mail case
// study (paper Figs 7-8, Table II), a generated Table III app, and the
// OpenGPS case study (Figs 9-10).
var goldenCases = []struct {
	appID    string
	users    int
	impacted float64 // developer-estimated impacted percentage (Step 5)
}{
	{"k9mail", 10, 15},
	{"bostonbusmap", 10, 20},
	{"opengps", 10, 15},
}

// TestGoldenReports locks the full Analyze output — every step's
// intermediate values, the manifestation points and the Step-5 ranking
// — byte-for-byte against checked-in reports. Any unintentional change
// to the 5-step pipeline shows up as a golden diff; intentional changes
// are re-recorded with -update.
func TestGoldenReports(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.appID, func(t *testing.T) {
			got := goldenReport(t, tc.appID, tc.users, tc.impacted, 0)
			path := filepath.Join("testdata", "golden", tc.appID+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to record): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("report for %s differs from %s (%d vs %d bytes); run with -update if the change is intentional",
					tc.appID, path, len(got), len(want))
			}
			// The report is documented byte-identical at any worker
			// count; hold the serial run to the same golden bytes.
			if serial := goldenReport(t, tc.appID, tc.users, tc.impacted, 1); !bytes.Equal(serial, want) {
				t.Fatalf("serial (parallelism=1) report for %s differs from golden", tc.appID)
			}
		})
	}
}

// goldenReport generates the fixed corpus for one app and renders its
// analysis report as indented JSON.
func goldenReport(t *testing.T, appID string, users int, impacted float64, parallelism int) []byte {
	t.Helper()
	app, err := apps.ByAppID(appID)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig(app, goldenSeed)
	wcfg.Users = users
	res, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.DeveloperImpactPercent = impacted
	cfg.Parallelism = parallelism
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := analyzer.Analyze(res.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}
