package core

import (
	"fmt"

	"repro/internal/trace"
)

// StageBench drives individual pipeline stages in isolation over a
// fixed corpus, for the per-stage micro-benchmarks and the allocation
// gate. Construction primes the full pipeline once — Step 1 per bundle,
// then ranking and normalization — so each stage method afterwards
// re-runs exactly its own stage against inputs the real pipeline would
// hand it. Methods are idempotent and cheap to call in a benchmark
// loop; they are not safe for concurrent use with each other because
// they share the primed traces.
type StageBench struct {
	a       *Analyzer
	bundles []*trace.TraceBundle
	traces  []*AnalyzedTrace
	// bases is a private copy of the Step-3 bases: rankAndBase returns a
	// slice owned by pooled scratch, invalid once the scratch is
	// returned.
	bases []float64
}

// NewStageBench builds the harness and primes every stage once.
func NewStageBench(cfg Config, bundles []*trace.TraceBundle) (*StageBench, error) {
	a, err := NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	sb := &StageBench{a: a, bundles: bundles}
	for i, b := range bundles {
		at, err := a.estimateEvents(b)
		if err != nil {
			return nil, fmt.Errorf("stagebench: bundle %d: %w", i, err)
		}
		sb.traces = append(sb.traces, at)
	}
	if len(sb.traces) == 0 {
		return nil, ErrNoTraces
	}
	fin := a.fin.Get().(*finishScratch)
	bases, err := a.rankAndBase(sb.traces, fin)
	if err != nil {
		a.fin.Put(fin)
		return nil, err
	}
	sb.bases = append([]float64(nil), bases...)
	a.fin.Put(fin)
	for _, at := range sb.traces {
		a.normalize(at, sb.bases)
	}
	return sb, nil
}

// Traces reports the number of primed traces.
func (sb *StageBench) Traces() int { return len(sb.traces) }

// StepOne re-runs Step 1 (pairing + power estimation + attribution) on
// every bundle, discarding the results.
func (sb *StageBench) StepOne() error {
	for i, b := range sb.bundles {
		if _, err := sb.a.estimateEvents(b); err != nil {
			return fmt.Errorf("stagebench: bundle %d: %w", i, err)
		}
	}
	return nil
}

// RankAndBase re-runs Step 2 (cross-trace ranking) and the Step-3 base
// derivation over the primed traces.
func (sb *StageBench) RankAndBase() error {
	fin := sb.a.fin.Get().(*finishScratch)
	defer sb.a.fin.Put(fin)
	_, err := sb.a.rankAndBase(sb.traces, fin)
	return err
}

// Normalize re-runs Step 3 over the primed traces.
func (sb *StageBench) Normalize() {
	for _, at := range sb.traces {
		sb.a.normalize(at, sb.bases)
	}
}

// Detect re-runs Step 4 (amplitude attribution + IQR fence detection +
// window-key collection) over the primed traces.
func (sb *StageBench) Detect() error {
	for _, at := range sb.traces {
		if err := sb.a.detect(at); err != nil {
			return fmt.Errorf("stagebench: trace %s: %w", at.TraceID, err)
		}
	}
	return nil
}
