package core_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestIncrementalMatchesBatchNewScenarios extends the differential
// suite over the new ABD scenario families: one app per family
// (gps-navigation, media-stream, sync-storm, tail-energy) plus a
// battery-saver-perturbed corpus. For each corpus, bundles are added
// one by one and then removed one by one, and after every mutation the
// incremental report must be byte-identical to batch Analyze over the
// remaining bundles.
func TestIncrementalMatchesBatchNewScenarios(t *testing.T) {
	cases := []struct {
		name       string
		appID      string
		saverPhase int
	}{
		{"gps-navigation", "navtracker", 0},
		{"media-stream", "podstream", 0},
		{"sync-storm", "syncmania", 0},
		{"tail-energy", "chatterbox", 0},
		{"battery-saver", "navtracker", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app, err := apps.ByAppID(tc.appID)
			if err != nil {
				t.Fatal(err)
			}
			cfg := workload.DefaultConfig(app, 63)
			cfg.Users = 8
			cfg.ImpactedFraction = 0.25
			cfg.BatterySaverPhase = tc.saverPhase
			corpus, err := workload.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pool := corpus.Bundles

			acfg := core.DefaultConfig()
			batch, err := core.NewAnalyzer(acfg)
			if err != nil {
				t.Fatal(err)
			}
			inc, err := core.NewIncrementalAnalyzer(acfg, 0)
			if err != nil {
				t.Fatal(err)
			}

			check := func(step string, n int) {
				t.Helper()
				got, gotErr := inc.Report()
				if n == 0 {
					if !errors.Is(gotErr, core.ErrNoTraces) {
						t.Fatalf("%s: empty corpus: got %v, want ErrNoTraces", step, gotErr)
					}
					return
				}
				if gotErr != nil {
					t.Fatalf("%s: incremental report: %v", step, gotErr)
				}
				want, wantErr := batch.Analyze(pool[:n])
				if wantErr != nil {
					t.Fatalf("%s: batch analyze: %v", step, wantErr)
				}
				if !bytes.Equal(reportJSON(t, got), reportJSON(t, want)) {
					t.Fatalf("%s: incremental report diverged from batch over %d bundles", step, n)
				}
			}

			keys := make([]string, len(pool))
			for i, b := range pool {
				key, added := inc.Add(b)
				if !added {
					t.Fatalf("add %d: fresh bundle %s reported as duplicate", i, key)
				}
				keys[i] = key
				check("add", i+1)
			}
			// Remove from the tail so the remaining corpus stays a prefix
			// of the pool (what the batch oracle re-analyzes).
			for i := len(pool) - 1; i >= 0; i-- {
				if !inc.Remove(keys[i]) {
					t.Fatalf("remove %d: present key %s returned false", i, keys[i])
				}
				check("remove", i)
			}
		})
	}
}
