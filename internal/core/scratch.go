package core

import (
	"sort"

	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/trace"
)

// step1Scratch is the reusable per-worker state for one Step-1 bundle
// estimation: a resettable power model, the prefix-sum attribution
// index rebuilt in place per bundle, and the pairing buffer whose
// key-lookup memo persists across bundles. Pooled per analyzer (not
// package-wide) because the pair buffer's interned-ID memo is only
// valid against its own analyzer's key table.
type step1Scratch struct {
	model power.Model
	index power.Index
	pair  *trace.PairBuffer
}

// workerScratch is the reusable per-worker state for Steps 2–4: sort
// and rank buffers (stats.Scratch), and the window-key dedup state
// (seen bitmap indexed by key ID, the collected ID list, and its
// sorter). Invariant between uses: seen is all-false and ids is empty.
type workerScratch struct {
	st   stats.Scratch
	seen []bool
	ids  []uint32
	srt  idSorter
}

// idSorter sorts key IDs by their event key's (Class, Callback) order —
// the same lexicographic order the map-based path sorted materialized
// keys in. Distinct IDs always map to distinct keys, so the order is
// strict and the result permutation-independent.
type idSorter struct {
	ids []uint32
	in  *trace.Interner
}

func (s *idSorter) Len() int { return len(s.ids) }
func (s *idSorter) Less(a, b int) bool {
	ka, kb := s.in.Key(s.ids[a]), s.in.Key(s.ids[b])
	if ka.Class != kb.Class {
		return ka.Class < kb.Class
	}
	return ka.Callback < kb.Callback
}
func (s *idSorter) Swap(a, b int) { s.ids[a], s.ids[b] = s.ids[b], s.ids[a] }

// sortIDs sorts ids with the scratch-held sorter (no closure allocation).
func (ws *workerScratch) sortIDs(in *trace.Interner, ids []uint32) {
	ws.srt.in = in
	ws.srt.ids = ids
	sort.Sort(&ws.srt)
	ws.srt.ids = nil
}

// finishScratch is the corpus-wide scratch for Steps 2–5: the per-ID
// instance counts, the grouped-by-ID power/rank columns with their
// offset and cursor tables, the list of IDs present in this corpus, and
// the per-ID normalization bases. One is checked out per finish run.
type finishScratch struct {
	counts  []int
	starts  []int
	cursors []int
	present []uint32
	powers  []float64
	ranks   []float64
	bases   []float64
}

// growInts returns s with length n, reusing capacity; contents are
// unspecified.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growIntsZero returns s with length n and every element zero.
func growIntsZero(s []int, n int) []int {
	s = growInts(s, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growFloatsZero(s []float64, n int) []float64 {
	s = growFloats(s, n)
	for i := range s {
		s[i] = 0
	}
	return s
}
