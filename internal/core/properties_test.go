package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests on the Step-4 amplitude metric.

func cleanSeries(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		// Normalized power is positive and bounded in practice.
		out = append(out, math.Abs(math.Mod(x, 100))+0.1)
	}
	return out
}

func TestAmplitudeLengthProperty(t *testing.T) {
	f := func(raw []float64) bool {
		norm := cleanSeries(raw)
		v := VariationAmplitudes(norm)
		s := SingleStepAmplitudes(norm)
		if len(v) != len(norm) || len(s) != len(norm) {
			return false
		}
		if len(norm) > 0 && (v[len(v)-1] != 0 || s[len(s)-1] != 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The monotone-run amplitude never reports less than the single step at
// the start of a strictly increasing run, and equals the single step
// everywhere the series is not increasing.
func TestAmplitudeDominanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(30)
		norm := make([]float64, n)
		for i := range norm {
			norm[i] = 0.5 + rng.Float64()*10
		}
		v := VariationAmplitudes(norm)
		s := SingleStepAmplitudes(norm)
		for i := 0; i+1 < n; i++ {
			if s[i] > 0 && v[i] < s[i]-1e-12 {
				t.Fatalf("trial %d idx %d: run amplitude %v below single step %v (series %v)",
					trial, i, v[i], s[i], norm)
			}
			if s[i] <= 0 && v[i] != s[i] {
				t.Fatalf("trial %d idx %d: non-increasing step rewritten: %v vs %v",
					trial, i, v[i], s[i])
			}
		}
	}
}

// A flat series (within the run epsilon) produces zero manifestations
// regardless of configuration.
func TestFlatSeriesNeverManifests(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(40)
		at := &AnalyzedTrace{NormPower: make([]float64, n)}
		base := 0.9 + rng.Float64()*0.2
		for i := range at.NormPower {
			at.NormPower[i] = base * (1 + (rng.Float64()-0.5)*0.004)
		}
		if err := a.detect(at); err != nil {
			t.Fatal(err)
		}
		if len(at.Manifestations) != 0 {
			t.Fatalf("trial %d: flat series flagged: %v", trial, at.NormPower)
		}
	}
}

// A single large sustained jump is always detected with the defaults.
func TestSustainedJumpAlwaysManifests(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		n := 10 + rng.Intn(30)
		jumpAt := 2 + rng.Intn(n-4)
		at := &AnalyzedTrace{NormPower: make([]float64, n)}
		for i := range at.NormPower {
			if i < jumpAt {
				at.NormPower[i] = 1 + (rng.Float64()-0.5)*0.02
			} else {
				at.NormPower[i] = 8 + (rng.Float64()-0.5)*0.02
			}
		}
		if err := a.detect(at); err != nil {
			t.Fatal(err)
		}
		if len(at.Manifestations) == 0 {
			t.Fatalf("trial %d: jump at %d missed: %v", trial, jumpAt, at.NormPower)
		}
		// The detected point is the last event before the jump.
		found := false
		for _, m := range at.Manifestations {
			if m == jumpAt-1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: jump at %d detected at %v", trial, jumpAt, at.Manifestations)
		}
	}
}
