package core

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// finishFromStepOne runs Steps 2–5 over prepared Step-1 outputs through
// the same finish path both engines use; the metamorphic properties
// below are statements about exactly this stage of the pipeline.
func finishFromStepOne(t *testing.T, a *Analyzer, bundles []*trace.TraceBundle, traces []*AnalyzedTrace) *Report {
	t.Helper()
	tr := obs.NewTracer()
	root := tr.Start("analyze")
	s1 := root.Child("step1.estimate")
	rec1 := s1.End()
	report, err := a.finish(bundles, traces, nil, root, rec1)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// stepOneAllOrFatal computes fresh Step-1 outputs for every bundle.
func stepOneAllOrFatal(t *testing.T, a *Analyzer, bundles []*trace.TraceBundle) []*AnalyzedTrace {
	t.Helper()
	out := make([]*AnalyzedTrace, len(bundles))
	for i, b := range bundles {
		at, err := a.StepOne(b)
		if err != nil {
			t.Fatalf("step 1 on bundle %d: %v", i, err)
		}
		out[i] = at
	}
	return out
}

// TestMetamorphicPermutationInvariance: Steps 2–5 aggregate over the
// corpus as a set, so permuting the bundle order must not change any
// per-trace analysis vector (matched by trace ID) nor the Step-5
// impact table — only the order of Report.Traces.
func TestMetamorphicPermutationInvariance(t *testing.T) {
	corpus := multiDeviceCorpus(t, 61)
	analyzer, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := analyzer.Analyze(corpus.Bundles)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string][]byte, len(base.Traces))
	for _, at := range base.Traces {
		data, err := json.Marshal(at)
		if err != nil {
			t.Fatal(err)
		}
		byID[at.TraceID] = data
	}

	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 3; round++ {
		perm := append([]*trace.TraceBundle(nil), corpus.Bundles...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got, err := analyzer.Analyze(perm)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.TotalTraces != base.TotalTraces || got.ImpactedTraces != base.ImpactedTraces {
			t.Fatalf("round %d: corpus-level counts changed under permutation", round)
		}
		if !reflect.DeepEqual(got.Impacted, base.Impacted) {
			t.Fatalf("round %d: Step-5 impact table changed under permutation:\n%v\nvs\n%v",
				round, got.Impacted, base.Impacted)
		}
		for _, at := range got.Traces {
			data, err := json.Marshal(at)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := byID[at.TraceID]
			if !ok {
				t.Fatalf("round %d: trace %s not in base report", round, at.TraceID)
			}
			if string(data) != string(want) {
				t.Fatalf("round %d: trace %s analysis changed under corpus permutation", round, at.TraceID)
			}
		}
	}
}

// TestMetamorphicPowerScalingCovariance: multiplying every Step-1 power
// estimate by k > 0 scales the un-normalized quantities (event powers,
// normalization bases) by k, but Step 3's normalization divides k back
// out — so ranks, normalized powers, amplitudes, fences, detected
// manifestation points and the Step-5 table must all be unchanged (up
// to float round-off for the real-valued vectors, exactly for the
// discrete ones).
func TestMetamorphicPowerScalingCovariance(t *testing.T) {
	corpus := multiDeviceCorpus(t, 67)
	analyzer, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{2.5, 0.125} {
		base := stepOneAllOrFatal(t, analyzer, corpus.Bundles)
		scaled := make([]*AnalyzedTrace, len(base))
		for i, at := range base {
			c := at.cloneStepOne()
			for j := range c.Events {
				c.Events[j].PowerMW *= k
			}
			scaled[i] = c
		}
		// finish mutates its traces, so give the baseline its own clones.
		baseRun := make([]*AnalyzedTrace, len(base))
		for i, at := range base {
			baseRun[i] = at.cloneStepOne()
		}
		want := finishFromStepOne(t, analyzer, corpus.Bundles, baseRun)
		got := finishFromStepOne(t, analyzer, corpus.Bundles, scaled)

		if !reflect.DeepEqual(got.Impacted, want.Impacted) {
			t.Fatalf("k=%v: Step-5 impact table changed under uniform power scaling", k)
		}
		if got.ImpactedTraces != want.ImpactedTraces {
			t.Fatalf("k=%v: impacted-trace count changed under scaling", k)
		}
		for i := range want.Traces {
			w, g := want.Traces[i], got.Traces[i]
			if !reflect.DeepEqual(g.Manifestations, w.Manifestations) {
				t.Fatalf("k=%v: trace %s manifestation points moved: %v vs %v",
					k, w.TraceID, g.Manifestations, w.Manifestations)
			}
			if !reflect.DeepEqual(g.WindowKeys, w.WindowKeys) {
				t.Fatalf("k=%v: trace %s window keys changed", k, w.TraceID)
			}
			if !reflect.DeepEqual(g.Rank, w.Rank) {
				t.Fatalf("k=%v: trace %s ranks changed (ranking is scale-free)", k, w.TraceID)
			}
			for j := range w.NormPower {
				if !closeRel(g.NormPower[j], w.NormPower[j], 1e-9) {
					t.Fatalf("k=%v: trace %s normalized power %d: %v vs %v",
						k, w.TraceID, j, g.NormPower[j], w.NormPower[j])
				}
			}
			for j := range w.Amplitude {
				if !closeRel(g.Amplitude[j], w.Amplitude[j], 1e-9) {
					t.Fatalf("k=%v: trace %s amplitude %d: %v vs %v",
						k, w.TraceID, j, g.Amplitude[j], w.Amplitude[j])
				}
			}
			if !closeRel(g.Fence, w.Fence, 1e-9) {
				t.Fatalf("k=%v: trace %s fence: %v vs %v", k, w.TraceID, g.Fence, w.Fence)
			}
			// The un-normalized side of the covariance: event powers
			// scale by exactly k.
			for j := range w.Events {
				if !closeRel(g.Events[j].PowerMW, k*w.Events[j].PowerMW, 1e-12) {
					t.Fatalf("k=%v: trace %s event %d power %v, want %v",
						k, w.TraceID, j, g.Events[j].PowerMW, k*w.Events[j].PowerMW)
				}
			}
		}
	}
}

// closeRel compares floats to a relative tolerance (absolute near 0).
func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1 {
		return d <= tol
	}
	return d <= tol*m
}

// TestMetamorphicDuplicateBundleIdempotency: under content-key dedup,
// offering the same bundle any number of times is indistinguishable
// from offering it once.
func TestMetamorphicDuplicateBundleIdempotency(t *testing.T) {
	corpus := multiDeviceCorpus(t, 71)
	inc, err := NewIncrementalAnalyzer(DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range corpus.Bundles {
		if _, added := inc.Add(b); !added {
			t.Fatal("fresh bundle deduplicated")
		}
	}
	once, err := inc.Report()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(once)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3*len(corpus.Bundles); i++ {
		b := corpus.Bundles[rng.Intn(len(corpus.Bundles))]
		if _, added := inc.Add(b); added {
			t.Fatal("duplicate bundle admitted to the corpus")
		}
	}
	if inc.Len() != len(corpus.Bundles) {
		t.Fatalf("corpus grew to %d under duplicate adds, want %d", inc.Len(), len(corpus.Bundles))
	}
	again, err := inc.Report()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(again)
	if string(gotJSON) != string(wantJSON) {
		t.Fatal("report changed after duplicate adds")
	}
}

// TestMetamorphicInterleavedMutationInvariance: the incremental
// engine's report is a pure function of the final ordered corpus — any
// interleaving of adds, removes, refreshes and intermediate reports
// that ends at the same corpus must produce a byte-identical report,
// and (history-independence of the treap summaries) the same summary
// key/value/node counts.
func TestMetamorphicInterleavedMutationInvariance(t *testing.T) {
	pool := multiDeviceCorpus(t, 79).Bundles
	target := pool[:8] // the final corpus, in this insertion order
	decoys := pool[8:]

	// Reference: a fresh analyzer fed only the final corpus.
	ref, err := NewIncrementalAnalyzer(DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range target {
		ref.Add(b)
	}
	refReport, err := ref.Report()
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(refReport)
	refStats := ref.SummaryStats()

	for schedule := 0; schedule < 3; schedule++ {
		rng := rand.New(rand.NewSource(300 + int64(schedule)))
		inc, err := NewIncrementalAnalyzer(DefaultConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		decoyKey := make(map[int]string) // decoy index -> key while present
		churnDecoys := func() {
			for n := rng.Intn(3); n > 0; n-- {
				i := rng.Intn(len(decoys))
				if key, ok := decoyKey[i]; ok {
					if !inc.Remove(key) {
						t.Fatalf("schedule %d: decoy %d vanished", schedule, i)
					}
					delete(decoyKey, i)
				} else {
					key, _ := inc.Add(decoys[i])
					decoyKey[i] = key
				}
				if rng.Intn(2) == 0 {
					inc.Refresh()
				}
			}
		}
		for _, b := range target {
			churnDecoys()
			key, added := inc.Add(b)
			if !added {
				t.Fatalf("schedule %d: target bundle deduplicated", schedule)
			}
			// Thrash the newest member: remove + re-add keeps it at the
			// end of the insertion order, via either the pending-queue
			// cancellation path or (with Refresh between) the full
			// apply/retract path.
			if rng.Intn(2) == 0 {
				if rng.Intn(2) == 0 {
					inc.Refresh()
				}
				inc.Remove(key)
				if rng.Intn(2) == 0 {
					inc.Refresh()
				}
				inc.Add(b)
			}
			// Intermediate reports force summary application at random
			// corpus prefixes.
			if rng.Intn(3) == 0 {
				if _, err := inc.Report(); err != nil {
					t.Fatalf("schedule %d: intermediate report: %v", schedule, err)
				}
			}
		}
		for i, key := range decoyKey {
			if !inc.Remove(key) {
				t.Fatalf("schedule %d: decoy %d vanished at drain", schedule, i)
			}
		}
		if rng.Intn(2) == 0 {
			inc.Refresh()
		}
		got, err := inc.Report()
		if err != nil {
			t.Fatalf("schedule %d: final report: %v", schedule, err)
		}
		gotJSON, _ := json.Marshal(got)
		if string(gotJSON) != string(refJSON) {
			t.Fatalf("schedule %d: report depends on mutation history, not just the final corpus", schedule)
		}
		st := inc.SummaryStats()
		if st.Keys != refStats.Keys || st.Values != refStats.Values || st.Nodes != refStats.Nodes {
			t.Fatalf("schedule %d: summary state diverged from fresh build: got keys=%d values=%d nodes=%d, want keys=%d values=%d nodes=%d",
				schedule, st.Keys, st.Values, st.Nodes, refStats.Keys, refStats.Values, refStats.Nodes)
		}
	}
}

// TestMetamorphicAddRemoveThrash: adversarially adding and removing the
// same bundle 1000 times must return the summaries to their exact
// initial state — same key/value/node counts (no leak in the treap
// arenas) and a byte-identical report.
func TestMetamorphicAddRemoveThrash(t *testing.T) {
	pool := multiDeviceCorpus(t, 83).Bundles
	base, extra := pool[:len(pool)-1], pool[len(pool)-1]
	inc, err := NewIncrementalAnalyzer(DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range base {
		inc.Add(b)
	}
	inc.Refresh()
	st0 := inc.SummaryStats()
	refReport, err := inc.Report()
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(refReport)

	// Applied thrash: every cycle round-trips the summaries through a
	// real insert + retract.
	for cycle := 0; cycle < 1000; cycle++ {
		key, added := inc.Add(extra)
		if !added {
			t.Fatalf("cycle %d: thrash bundle deduplicated", cycle)
		}
		inc.Refresh()
		if !inc.Remove(key) {
			t.Fatalf("cycle %d: thrash bundle missing at remove", cycle)
		}
		inc.Refresh()
	}
	// Queued thrash: without a Refresh between them, add+remove cancel
	// in the pending queue and never touch the summaries.
	for cycle := 0; cycle < 1000; cycle++ {
		inc.Add(extra)
		inc.Remove(bundleKey(extra))
	}
	if st := inc.SummaryStats(); st.PendingMutations != 0 {
		t.Fatalf("canceled add/remove pairs left %d pending mutations", st.PendingMutations)
	}

	if inc.Len() != len(base) {
		t.Fatalf("thrash changed corpus size: %d, want %d", inc.Len(), len(base))
	}
	st1 := inc.SummaryStats()
	if st1.Keys != st0.Keys || st1.Values != st0.Values || st1.Nodes != st0.Nodes {
		t.Fatalf("thrash leaked summary state: keys %d -> %d, values %d -> %d, nodes %d -> %d",
			st0.Keys, st1.Keys, st0.Values, st1.Values, st0.Nodes, st1.Nodes)
	}
	got, err := inc.Report()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	if string(gotJSON) != string(refJSON) {
		t.Fatal("report changed after add/remove thrash")
	}
}

// TestMetamorphicEdgeCorpora covers the Steps 2–4 degenerate shapes:
// an empty corpus, a single-trace corpus, and traces with zero or one
// event instance (too short for amplitude/fence computation).
func TestMetamorphicEdgeCorpora(t *testing.T) {
	analyzer, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("empty", func(t *testing.T) {
		if _, err := analyzer.Analyze(nil); !errors.Is(err, ErrNoTraces) {
			t.Fatalf("got %v, want ErrNoTraces", err)
		}
		inc, err := NewIncrementalAnalyzer(DefaultConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Report(); !errors.Is(err, ErrNoTraces) {
			t.Fatalf("incremental: got %v, want ErrNoTraces", err)
		}
	})

	t.Run("single-trace", func(t *testing.T) {
		corpus := multiDeviceCorpus(t, 73)
		report, err := analyzer.Analyze(corpus.Bundles[:1])
		if err != nil {
			t.Fatal(err)
		}
		if report.TotalTraces != 1 || len(report.Traces) != 1 {
			t.Fatalf("single-trace corpus produced %d traces", report.TotalTraces)
		}
		at := report.Traces[0]
		if len(at.Rank) != len(at.Events) || len(at.NormPower) != len(at.Events) {
			t.Fatal("per-event vectors not aligned with events")
		}
	})

	t.Run("tiny-traces", func(t *testing.T) {
		key := trace.EventKey{Class: "Lapp/Tiny", Callback: "onResume"}
		mk := func(traceID string, events int) *trace.TraceBundle {
			et := trace.EventTrace{AppID: "tinyapp", UserID: "u-" + traceID, TraceID: traceID, Device: "nexus6"}
			for e := 0; e < events; e++ {
				base := int64(e * 1000)
				et.Records = append(et.Records,
					trace.Record{TimestampMS: base, Dir: trace.Enter, Key: key},
					trace.Record{TimestampMS: base + 500, Dir: trace.Exit, Key: key},
				)
			}
			ut := trace.UtilizationTrace{AppID: "tinyapp", PeriodMS: 500}
			span := int64(events) * 1000
			if span == 0 {
				span = 1000
			}
			for ts := int64(0); ts <= span; ts += 500 {
				var u trace.UtilizationVector
				u.Set(trace.CPU, 0.3)
				ut.Samples = append(ut.Samples, trace.UtilizationSample{TimestampMS: ts, Util: u})
			}
			return &trace.TraceBundle{Event: et, Util: ut}
		}
		corpus := []*trace.TraceBundle{mk("t0", 0), mk("t1", 1), mk("t2", 2)}
		report, err := analyzer.Analyze(corpus)
		if err != nil {
			t.Fatalf("tiny corpus must analyze cleanly: %v", err)
		}
		if report.TotalTraces != 3 {
			t.Fatalf("analyzed %d traces, want 3", report.TotalTraces)
		}
		for _, at := range report.Traces[:2] {
			if len(at.Manifestations) != 0 {
				t.Fatalf("trace %s too short for detection reported manifestations %v", at.TraceID, at.Manifestations)
			}
		}
		// Incremental parity holds on degenerate shapes too.
		inc, err := NewIncrementalAnalyzer(DefaultConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range corpus {
			inc.Add(b)
		}
		got, err := inc.Report()
		if err != nil {
			t.Fatal(err)
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(report)
		if string(gj) != string(wj) {
			t.Fatal("incremental diverged from batch on tiny traces")
		}
	})
}
