package core

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/apk"
	"repro/internal/trace"
)

// CodeReduction is the paper's evaluation metric (§IV-B):
// (N_All - N_Diagnosis) / N_All, where N_Diagnosis is the lines of code
// behind the reported events and N_All is the app's total lines.
type CodeReduction struct {
	AppID          string  `json:"appId"`
	TotalLines     int     `json:"totalLines"`
	DiagnosisLines int     `json:"diagnosisLines"`
	Reduction      float64 `json:"reduction"` // in [0, 1]
}

// ComputeCodeReduction evaluates the metric for the top-n reported events
// against the app's APK model. n <= 0 uses every reported event.
func ComputeCodeReduction(r *Report, pkg *apk.Package, n int) (CodeReduction, error) {
	if pkg == nil {
		return CodeReduction{}, fmt.Errorf("core: nil package")
	}
	total := pkg.TotalSourceLines()
	if total == 0 {
		return CodeReduction{}, fmt.Errorf("core: package %q has no source lines", pkg.AppID)
	}
	diag := pkg.LinesFor(r.TopKeys(n))
	if diag > total {
		diag = total
	}
	return CodeReduction{
		AppID:          r.AppID,
		TotalLines:     total,
		DiagnosisLines: diag,
		Reduction:      float64(total-diag) / float64(total),
	}, nil
}

// WriteText renders the report for developers: the manifestation points
// per trace and the ranked event table, in the shape of the paper's
// Tables II/IV/V/VI.
func (r *Report) WriteText(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EnergyDx diagnosis report for %s\n", r.AppID)
	fmt.Fprintf(&sb, "traces analyzed: %d, traces with manifestation points: %d\n",
		r.TotalTraces, r.ImpactedTraces)
	for _, at := range r.Traces {
		if len(at.Manifestations) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "\ntrace %s (user %s, device %s): %d manifestation point(s)\n",
			at.TraceID, at.UserID, at.Device, len(at.Manifestations))
		for _, m := range at.Manifestations {
			ep := at.Events[m]
			fmt.Fprintf(&sb, "  @event %d  %-40s  norm=%.2f  amplitude=%.2f (fence %.2f)\n",
				m, trace.ShortKey(ep.Instance.Key), at.NormPower[m], at.Amplitude[m], at.Fence)
		}
	}
	fmt.Fprintf(&sb, "\n%-4s %-44s %8s %8s\n", "rank", "event", "traces", "percent")
	for i, im := range r.Impacted {
		fmt.Fprintf(&sb, "%-4d %-44s %8d %7.1f%%\n", i+1, trace.ShortKey(im.Key), im.Traces, im.Percent)
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	return nil
}

// WriteStages renders the per-step latency breakdown recorded during
// Analyze (energydx -stats). Wall is elapsed monotonic time; CPU is
// process CPU consumed during the step, so a parallel step with CPU
// well above wall is using its workers.
func (r *Report) WriteStages(w io.Writer) error {
	if len(r.Stages) == 0 {
		_, err := io.WriteString(w, "no stage timings recorded\n")
		return err
	}
	var sb strings.Builder
	sb.WriteString("analysis stage timing (wall / process CPU):\n")
	for _, st := range r.Stages {
		label := st.Name
		if st.Step > 0 {
			label = fmt.Sprintf("step %d %s", st.Step, st.Name)
		}
		fmt.Fprintf(&sb, "  %-18s %12s / %-12s %6d item(s)\n",
			label, st.Wall.Round(time.Microsecond), st.CPU.Round(time.Microsecond), st.Items)
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("write stage timing: %w", err)
	}
	return nil
}

// String renders the report to a string.
func (r *Report) String() string {
	var sb strings.Builder
	_ = r.WriteText(&sb) // strings.Builder never errors
	return sb.String()
}
