// Package core implements the EnergyDx manifestation analysis: the 5-step
// algorithm of paper §III that distinguishes the real ABD manifestation
// point from power-transition points caused by normal usage, and reports
// the events coinciding with the manifestation ordered by how closely
// their impacted-trace percentage matches the developer-reported
// impacted-user percentage.
package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/obs"
)

// Config holds the tunable parameters of the manifestation analysis. The
// defaults are the paper's published choices.
type Config struct {
	// NormBasePercentile is the percentile of an event's power
	// distribution used as its normalization base (Step 3). The paper
	// uses the 10th percentile "to reduce the impact of power outliers".
	NormBasePercentile float64

	// FenceMultiplier is the IQR multiplier of the upper outer fence in
	// Step 4's outlier detection. The paper uses Q3 + 3*IQR.
	FenceMultiplier float64

	// MinAmplitude is the minimum variation amplitude (in normalized
	// power units) a fence outlier must reach to count as a
	// manifestation point. The paper's premise is that the ABD moves
	// power "from normal (low) to abnormal (high)"; requiring the rise
	// to be at least half the event's typical power keeps degenerate
	// IQR fences on near-flat traces from promoting measurement jitter.
	MinAmplitude float64

	// WindowEvents is the manifestation-window half-width in events:
	// instances within WindowEvents positions of a detected point are
	// reported (Step 5). The paper's worked example uses 2.
	WindowEvents int

	// SingleStepAmplitude disables the paper's monotone-run extension
	// of the variation amplitude: with it set, V_i is always
	// p_{i+1} - p_i. Used by the amplitude ablation; gradually
	// manifesting ABDs (power climbing over several events) are found
	// late or missed in this mode.
	SingleStepAmplitude bool

	// ReferenceDevice is the profile all power is scaled to before
	// comparison (Step 1, power-model scaling [22]).
	ReferenceDevice string

	// DeveloperImpactPercent is the developer-estimated percentage of
	// users impacted by the ABD (Step 5). Events whose impacted-trace
	// percentage is closest to this value are reported first. When <= 0
	// the report falls back to sorting by impact percentage descending.
	DeveloperImpactPercent float64

	// EstimationNoiseFrac, when positive, injects multiplicative Gaussian
	// noise of this fractional standard deviation into Step 1's power
	// estimates (the paper's model has <2.5% error). NoiseSeed drives it.
	EstimationNoiseFrac float64
	NoiseSeed           int64

	// SkipInvalidTraces degrades gracefully on corrupt corpora: a trace
	// that fails Step 1 (unknown device, unpaired records, bad power
	// input) is recorded in Report.Skipped and excluded instead of
	// failing the whole batch. A production backend analyzing uploads
	// from millions of devices sets this; the paper-reproduction
	// experiments leave it off so generator bugs stay loud.
	SkipInvalidTraces bool

	// Devices resolves device profile names. Nil means the built-in
	// registry.
	Devices *device.Registry

	// Parallelism is the worker count for the analysis fan-outs: Step 1
	// per trace, Step 2 per event-key shard, and Steps 3-4 per trace.
	// 0 means one worker per available CPU (GOMAXPROCS), 1 forces a
	// serial run, and values above the item count are clamped. The
	// report is byte-identical at any worker count: results land in
	// input order, and estimation noise draws from a per-bundle RNG
	// seeded with NoiseSeed, so it does not depend on execution order.
	Parallelism int

	// Tracer, when non-nil, receives detailed spans from the analysis:
	// the five step spans plus one span per worker task, exportable as
	// a JSONL trace (energydx -trace). When nil the analyzer still
	// times each step against a private tracer to fill Report.Stages,
	// but skips the per-task spans so the hot path stays lean. Spans
	// never influence the report's analytic content.
	Tracer *obs.Tracer
}

// DefaultConfig returns the paper's parameterization.
func DefaultConfig() Config {
	return Config{
		NormBasePercentile:     10,
		FenceMultiplier:        3,
		MinAmplitude:           0.5,
		WindowEvents:           2,
		ReferenceDevice:        "nexus6",
		DeveloperImpactPercent: 0,
	}
}

// validate normalizes and checks the configuration.
func (c *Config) validate() error {
	if c.NormBasePercentile < 0 || c.NormBasePercentile > 100 {
		return fmt.Errorf("core: normalization base percentile %v out of [0, 100]", c.NormBasePercentile)
	}
	if c.FenceMultiplier <= 0 {
		return fmt.Errorf("core: fence multiplier %v must be positive", c.FenceMultiplier)
	}
	if c.MinAmplitude < 0 {
		return fmt.Errorf("core: minimum amplitude %v must be non-negative", c.MinAmplitude)
	}
	if c.WindowEvents < 0 {
		return fmt.Errorf("core: window size %d must be non-negative", c.WindowEvents)
	}
	if c.ReferenceDevice == "" {
		c.ReferenceDevice = "nexus6"
	}
	if c.Devices == nil {
		c.Devices = device.NewRegistry()
	}
	if _, err := c.Devices.Lookup(c.ReferenceDevice); err != nil {
		return fmt.Errorf("core: reference device: %w", err)
	}
	return nil
}
