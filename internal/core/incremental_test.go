package core_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

// bundlePool generates a deterministic pool of bundles the mutation
// harness draws from.
func bundlePool(t *testing.T, users int, seed int64) []*trace.TraceBundle {
	t.Helper()
	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, seed)
	cfg.Users = users
	cfg.ImpactedFraction = 0.25
	corpus, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return corpus.Bundles
}

// reportJSON marshals a report; JSON is the byte-identity currency of
// the differential harness (Stages is json:"-", so timing jitter never
// participates).
func reportJSON(t *testing.T, r *core.Report) []byte {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// mirror is the oracle corpus: the exact ordered bundle slice the
// incremental analyzer should be equivalent to batch-analyzing.
type mirror struct {
	keys    []string
	bundles []*trace.TraceBundle
}

func (m *mirror) add(key string, b *trace.TraceBundle) {
	m.keys = append(m.keys, key)
	m.bundles = append(m.bundles, b)
}

func (m *mirror) remove(key string) {
	for i, k := range m.keys {
		if k == key {
			m.keys = append(m.keys[:i:i], m.keys[i+1:]...)
			m.bundles = append(m.bundles[:i:i], m.bundles[i+1:]...)
			return
		}
	}
}

// TestIncrementalMatchesBatch is the differential harness of the
// incremental engine: a seeded random sequence of corpus mutations
// (add, remove, re-add, duplicate add) with, after every mutation, a
// byte-identical comparison between IncrementalAnalyzer.Report and a
// fresh batch Analyzer.Analyze over the mirrored bundle slice. Variants
// cover estimation noise (Step-1 purity under the per-bundle seeded
// RNG) and a cache far smaller than the corpus (eviction must cost
// time, never correctness).
func TestIncrementalMatchesBatch(t *testing.T) {
	variants := []struct {
		name      string
		noise     float64
		cacheCap  int
		mutations int
	}{
		{"no-noise", 0, 0, 120},
		{"paper-noise", power.PaperNoiseFrac, 0, 120},
		{"tiny-cache", 0, 3, 80},
	}
	pool := bundlePool(t, 14, 41)
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.EstimationNoiseFrac = v.noise
			cfg.NoiseSeed = 7
			batch, err := core.NewAnalyzer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			inc, err := core.NewIncrementalAnalyzer(cfg, v.cacheCap)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(1000 + int64(len(v.name))))
			var m mirror
			removed := make(map[string]*trace.TraceBundle) // key -> bundle, for re-adds
			next := 0                                      // next unseen pool bundle

			check := func(step int) {
				t.Helper()
				got, gotErr := inc.Report()
				if len(m.bundles) == 0 {
					if !errors.Is(gotErr, core.ErrNoTraces) {
						t.Fatalf("step %d: empty corpus: got %v, want ErrNoTraces", step, gotErr)
					}
					return
				}
				if gotErr != nil {
					t.Fatalf("step %d: incremental report: %v", step, gotErr)
				}
				want, wantErr := batch.Analyze(m.bundles)
				if wantErr != nil {
					t.Fatalf("step %d: batch analyze: %v", step, wantErr)
				}
				gj, wj := reportJSON(t, got), reportJSON(t, want)
				if !bytes.Equal(gj, wj) {
					t.Fatalf("step %d: incremental report diverged from batch over %d bundles:\nincremental: %.200s\nbatch:       %.200s",
						step, len(m.bundles), gj, wj)
				}
			}

			for step := 0; step < v.mutations; step++ {
				op := rng.Intn(4)
				switch {
				case op == 0 && next < len(pool): // add an unseen bundle
					b := pool[next]
					next++
					key, added := inc.Add(b)
					if !added {
						t.Fatalf("step %d: fresh bundle %s reported as duplicate", step, key)
					}
					m.add(key, b)
				case op == 1 && len(m.keys) > 0: // remove a random corpus bundle
					key := m.keys[rng.Intn(len(m.keys))]
					removed[key] = nil
					for i, k := range m.keys {
						if k == key {
							removed[key] = m.bundles[i]
							break
						}
					}
					if !inc.Remove(key) {
						t.Fatalf("step %d: remove of present key %s returned false", step, key)
					}
					m.remove(key)
				case op == 2 && len(removed) > 0: // re-add a removed bundle (cache hit)
					var key string
					for k := range removed {
						key = k
						break
					}
					b := removed[key]
					delete(removed, key)
					k2, added := inc.Add(b)
					if k2 != key {
						t.Fatalf("step %d: re-add changed content key: %s -> %s", step, key, k2)
					}
					if !added {
						t.Fatalf("step %d: re-add of absent key %s reported as duplicate", step, key)
					}
					m.add(key, b)
				case op == 3 && len(m.keys) > 0: // duplicate add: must be a no-op
					i := rng.Intn(len(m.bundles))
					before := inc.Len()
					if _, added := inc.Add(m.bundles[i]); added {
						t.Fatalf("step %d: duplicate add of %s was not deduplicated", step, m.keys[i])
					}
					if inc.Len() != before {
						t.Fatalf("step %d: duplicate add changed corpus size %d -> %d", step, before, inc.Len())
					}
				default: // op not applicable in this state; add if possible
					if next < len(pool) {
						b := pool[next]
						next++
						key, _ := inc.Add(b)
						m.add(key, b)
					}
				}
				check(step)
			}
			if inc.Len() != len(m.bundles) {
				t.Fatalf("corpus size diverged: incremental %d, mirror %d", inc.Len(), len(m.bundles))
			}
			st := inc.CacheStats()
			if st.Hits+st.Misses != st.Lookups {
				t.Fatalf("cache stats do not reconcile: hits %d + misses %d != lookups %d", st.Hits, st.Misses, st.Lookups)
			}
			if v.cacheCap <= 0 && st.Evictions != 0 {
				t.Fatalf("unbounded-enough cache evicted %d entries", st.Evictions)
			}
			if v.cacheCap == 3 && st.Evictions == 0 {
				t.Fatal("tiny cache variant never evicted; eviction-then-recompute path untested")
			}
		})
	}
}

// TestIncrementalSkipInvalidMatchesBatch extends the differential
// check to the graceful-degradation path: corrupt bundles under
// SkipInvalidTraces must produce identical Skipped entries (including
// corpus indices) from both engines, and the negative cache must not
// distort later reports.
func TestIncrementalSkipInvalidMatchesBatch(t *testing.T) {
	pool := bundlePool(t, 8, 43)
	// Corrupt two bundles in ways Step 1 rejects: an unknown device and
	// an invalid utilization period.
	bad1 := *pool[2]
	bad1.Key = ""
	bad1.Event.Device = "no-such-device"
	bad2 := *pool[5]
	bad2.Key = ""
	bad2.Util.PeriodMS = -1
	corpus := []*trace.TraceBundle{pool[0], &bad1, pool[1], &bad2, pool[3]}

	cfg := core.DefaultConfig()
	cfg.SkipInvalidTraces = true
	batch, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := core.NewIncrementalAnalyzer(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range corpus {
		inc.Add(b)
	}
	for round := 0; round < 2; round++ { // round 2 serves Step-1 failures from the negative cache
		got, err := inc.Report()
		if err != nil {
			t.Fatalf("round %d: incremental: %v", round, err)
		}
		want, err := batch.Analyze(corpus)
		if err != nil {
			t.Fatalf("round %d: batch: %v", round, err)
		}
		if gj, wj := reportJSON(t, got), reportJSON(t, want); !bytes.Equal(gj, wj) {
			t.Fatalf("round %d: lenient incremental report diverged from batch", round)
		}
		if len(got.Skipped) != 2 {
			t.Fatalf("round %d: skipped %d traces, want 2", round, len(got.Skipped))
		}
	}
	// Strict mode: both engines must fail on the same bundle.
	cfg.SkipInvalidTraces = false
	strictBatch, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	strictInc, err := core.NewIncrementalAnalyzer(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range corpus {
		strictInc.Add(b)
	}
	_, batchErr := strictBatch.Analyze(corpus)
	_, incErr := strictInc.Report()
	if batchErr == nil || incErr == nil {
		t.Fatalf("strict mode did not fail: batch %v, incremental %v", batchErr, incErr)
	}
	if batchErr.Error() != incErr.Error() {
		t.Fatalf("strict errors diverge:\nbatch:       %v\nincremental: %v", batchErr, incErr)
	}
}

// TestServedReportDetachedFromAnalyzerState is the regression test for
// the served-report aliasing fix: a caller holding a long-lived report
// (an online serving handler's client) may mutate anything reachable
// from it — TopEvents/TopKeys results, the impact table, even the
// per-trace Step-1 vectors — without changing what the analyzer serves
// next.
func TestServedReportDetachedFromAnalyzerState(t *testing.T) {
	pool := bundlePool(t, 6, 47)
	inc, err := core.NewIncrementalAnalyzer(core.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range pool {
		inc.Add(b)
	}
	served, err := inc.Report()
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, served) // snapshot before any mutation

	// Vandalize everything a handler could leak to a client.
	if top := served.TopEvents(0); len(top) > 0 {
		top[0].Key.Class = "Lmutated/by/caller"
		top[0].Percent = -1
		top[0].Traces = 1 << 30
	}
	if keys := served.TopKeys(0); len(keys) > 0 {
		keys[0].Callback = "mutated"
	}
	if len(served.Impacted) > 0 {
		served.Impacted[0].Percent = 123456
	}
	for _, at := range served.Traces {
		for i := range at.Events {
			at.Events[i].PowerMW = -999
			at.Events[i].Instance.Key.Class = "Lclobbered"
		}
		for i := range at.Rank {
			at.Rank[i] = -1
		}
		at.Manifestations = append(at.Manifestations, 0)
		at.WindowKeys = nil
	}

	again, err := inc.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, again); !bytes.Equal(got, want) {
		t.Fatal("mutating a served report changed the next report: analyzer state was aliased")
	}
}

// TestIncrementalConcurrentUse exercises Add/Remove/Report/CacheStats
// racing from many goroutines; correctness here is "no race, no panic,
// reports internally consistent", pinned under -race in CI.
func TestIncrementalConcurrentUse(t *testing.T) {
	pool := bundlePool(t, 10, 53)
	inc, err := core.NewIncrementalAnalyzer(core.DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(pool))
	for i, b := range pool {
		keys[i], _ = inc.Add(b)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 15; i++ {
				switch rng.Intn(3) {
				case 0:
					k := keys[rng.Intn(len(keys))]
					inc.Remove(k)
					inc.Add(pool[indexOf(keys, k)])
				case 1:
					if r, err := inc.Report(); err == nil {
						if r.TotalTraces != len(r.Traces) {
							t.Errorf("inconsistent report: TotalTraces %d, traces %d", r.TotalTraces, len(r.Traces))
						}
					}
				default:
					st := inc.CacheStats()
					if st.Hits+st.Misses != st.Lookups {
						t.Errorf("stats racing apart: %+v", st)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func indexOf(keys []string, k string) int {
	for i, key := range keys {
		if key == k {
			return i
		}
	}
	panic(fmt.Sprintf("key %s not in pool", k))
}

// TestTopEventsTopKeysDefensiveCopies pins the defensive-copy contract
// of the report accessors on the plain batch path too: mutating their
// results must not change the report.
func TestTopEventsTopKeysDefensiveCopies(t *testing.T) {
	pool := bundlePool(t, 6, 59)
	analyzer, err := core.NewAnalyzer(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	report, err := analyzer.Analyze(pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Impacted) == 0 {
		t.Fatal("corpus produced no impacted events; pick a different seed")
	}
	want := reportJSON(t, report)

	top := report.TopEvents(len(report.Impacted))
	for i := range top {
		top[i].Key = trace.EventKey{Class: "Ljunk", Callback: "junk"}
		top[i].Traces = -1
		top[i].Percent = -1
	}
	keys := report.TopKeys(len(report.Impacted))
	for i := range keys {
		keys[i] = trace.EventKey{Class: "Lmore/junk", Callback: "junk"}
	}
	if got := reportJSON(t, report); !bytes.Equal(got, want) {
		t.Fatal("mutating TopEvents/TopKeys results changed the report")
	}
}
