package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Analysis-layer metrics on the process registry: how many diagnoses
// ran, how many traces they covered, and — live, not just post-hoc in
// report files — how many traces the most recent run skipped.
var (
	mAnalyses       = obs.Default.Counter("core_analyses_total", "completed core.Analyze runs")
	mTracesAnalyzed = obs.Default.Counter("core_traces_analyzed_total", "traces that passed Step 1 across all analyses")
	mTracesSkipped  = obs.Default.Counter("core_traces_skipped_total", "traces excluded under SkipInvalidTraces across all analyses")
	gSkippedLast    = obs.Default.Gauge("core_skipped_traces", "traces skipped by the most recent analysis")
)

// EventPower is one event instance with its Step-1 power estimate, scaled
// to the reference device.
type EventPower struct {
	Instance trace.Instance `json:"instance"`
	PowerMW  float64        `json:"powerMilliwatts"`
}

// AnalyzedTrace carries one trace through all five steps; the
// intermediate vectors are retained because the paper's diagnosis figures
// (7a/7b/7c, 9, 12, 15) plot exactly them.
type AnalyzedTrace struct {
	TraceID string `json:"traceId"`
	UserID  string `json:"userId"`
	Device  string `json:"device"`

	// Events in chronological order with raw scaled power (Step 1).
	Events []EventPower `json:"events"`
	// Rank[i] is the cross-trace rank of Events[i] among instances of
	// the same event key (Step 2).
	Rank []float64 `json:"rank"`
	// NormPower[i] is Events[i].PowerMW normalized to the event's base
	// power (Step 3).
	NormPower []float64 `json:"normPower"`
	// Amplitude[i] is the variation amplitude of Events[i] (Step 4).
	Amplitude []float64 `json:"amplitude"`
	// Fence is the Step-4 upper outer fence for this trace.
	Fence float64 `json:"fence"`
	// Manifestations are indices into Events detected as manifestation
	// points (Step 4).
	Manifestations []int `json:"manifestations"`
	// WindowKeys are the distinct event keys inside the manifestation
	// windows of this trace (Step 5 input).
	WindowKeys []trace.EventKey `json:"windowKeys"`

	// keyIDs[i] is Events[i].Instance.Key interned in the owning
	// analyzer's key table: the dense-ID column Steps 2–5 index flat
	// slices with instead of hashing EventKey structs. windowIDs mirrors
	// WindowKeys the same way. Both are derivable from the exported
	// fields, so they stay out of the JSON encoding and are rebuilt on
	// demand (ensureKeyIDs) for traces that arrive without them.
	keyIDs    []uint32
	windowIDs []uint32
}

// Impact is one reported event with the fraction of traces it impacted
// (Step 5 output).
type Impact struct {
	Key     trace.EventKey `json:"key"`
	Traces  int            `json:"traces"`
	Percent float64        `json:"percent"`
}

// SkippedTrace records one trace excluded from analysis under
// Config.SkipInvalidTraces.
type SkippedTrace struct {
	// Index is the trace's position in the submitted corpus.
	Index int `json:"index"`
	// TraceID identifies the trace when its envelope was readable.
	TraceID string `json:"traceId,omitempty"`
	// Reason is the Step-1 error that disqualified the trace.
	Reason string `json:"reason"`
}

// Report is the complete diagnosis for one app's trace corpus.
type Report struct {
	AppID       string           `json:"appId"`
	TotalTraces int              `json:"totalTraces"`
	Traces      []*AnalyzedTrace `json:"traces"`
	// Impacted lists every event seen in any manifestation window,
	// sorted by the Step-5 criterion.
	Impacted []Impact `json:"impacted"`
	// ImpactedTraces is the number of traces with at least one detected
	// manifestation point.
	ImpactedTraces int `json:"impactedTraces"`
	// Skipped lists traces excluded under Config.SkipInvalidTraces.
	// TotalTraces counts only the analyzed traces.
	Skipped []SkippedTrace `json:"skipped,omitempty"`

	// Stages is the per-step wall/CPU breakdown of this analysis,
	// sourced from spans (energydx -stats renders it). Excluded from
	// JSON so golden reports and cross-worker byte-identity are
	// untouched by timing jitter.
	Stages []StageTiming `json:"-"`
}

// StageTiming is one pipeline stage's latency contribution. Step 0 is
// the whole-analysis total.
type StageTiming struct {
	Step  int
	Name  string
	Wall  time.Duration
	CPU   time.Duration
	Items int
}

// TopEvents returns the first n reported events (all if n <= 0 or beyond
// the list).
func (r *Report) TopEvents(n int) []Impact {
	if n <= 0 || n > len(r.Impacted) {
		n = len(r.Impacted)
	}
	out := make([]Impact, n)
	copy(out, r.Impacted[:n])
	return out
}

// TopKeys returns the event keys of the first n reported events.
func (r *Report) TopKeys(n int) []trace.EventKey {
	top := r.TopEvents(n)
	keys := make([]trace.EventKey, len(top))
	for i, im := range top {
		keys[i] = im.Key
	}
	return keys
}

// Analyzer runs the 5-step manifestation analysis.
//
// Memory model: every event key is interned into a per-analyzer key
// table the first time Step 1 sees it, and all cross-trace state in
// Steps 2–5 is flat slices indexed by the resulting dense uint32 IDs.
// Transient working memory (power model + attribution index, pairing
// buffers, sort/rank scratch, the grouped Step-2 columns) comes from
// per-analyzer sync.Pools, so steady-state analysis allocates only the
// vectors that outlive the call — the report itself. The pools are
// per-analyzer, not package-global, because pairing buffers memoize
// interned IDs that are meaningless under another analyzer's table.
type Analyzer struct {
	cfg  Config
	ref  device.Profile
	keys *trace.Interner

	s1  sync.Pool // *step1Scratch
	wrk sync.Pool // *workerScratch
	fin sync.Pool // *finishScratch
}

// NewAnalyzer validates the configuration and builds an analyzer.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ref, err := cfg.Devices.Lookup(cfg.ReferenceDevice)
	if err != nil {
		return nil, err
	}
	a := &Analyzer{cfg: cfg, ref: ref, keys: trace.NewInterner()}
	a.s1.New = func() any { return &step1Scratch{pair: trace.NewPairBuffer(a.keys)} }
	a.wrk.New = func() any { return &workerScratch{} }
	a.fin.New = func() any { return &finishScratch{} }
	return a, nil
}

// ensureKeyIDs fills the trace's interned-key-ID column when absent.
// Traces produced by estimateEvents arrive with it already populated,
// so on the pipeline path this is a length check.
func (a *Analyzer) ensureKeyIDs(at *AnalyzedTrace) {
	if len(at.keyIDs) == len(at.Events) {
		return
	}
	at.keyIDs = make([]uint32, len(at.Events))
	for i := range at.Events {
		at.keyIDs[i] = a.keys.ID(at.Events[i].Instance.Key)
	}
}

// ErrNoTraces is returned when Analyze receives an empty corpus.
var ErrNoTraces = errors.New("core: no traces to analyze")

// Analyze runs all five steps over a corpus of trace bundles collected
// from different users and returns the diagnosis report. Each step is
// timed against the monotonic clock (Report.Stages); a caller-provided
// Config.Tracer additionally receives one span per worker task.
func (a *Analyzer) Analyze(bundles []*trace.TraceBundle) (*Report, error) {
	if len(bundles) == 0 {
		return nil, ErrNoTraces
	}
	tr, detail := a.cfg.Tracer, a.cfg.Tracer != nil
	if tr == nil {
		tr = obs.NewTracer()
	}
	root := tr.Start("analyze")

	// Step 1: power estimation of events, per trace (parallelizable:
	// traces are independent).
	s1 := root.Child("step1.estimate")
	traces, skipped, err := a.stepOneAll(bundles, s1, detail)
	if err != nil {
		return nil, err
	}
	rec1 := s1.End()
	return a.finish(bundles, traces, skipped, root, rec1)
}

// finish runs Steps 2–5 over already-estimated traces and assembles the
// report. It is the single implementation behind both the batch path
// (Analyze, which computes Step 1 fresh) and the incremental path
// (IncrementalAnalyzer.Report, which replays cached Step-1 outputs), so
// the two are byte-identical by construction. bundles is the submitted
// corpus in order (including invalid entries), used for the AppID scan
// and the Step-1 item count; traces and skipped partition it.
func (a *Analyzer) finish(bundles []*trace.TraceBundle, traces []*AnalyzedTrace, skipped []SkippedTrace, root *obs.Span, rec1 obs.SpanRecord) (*Report, error) {
	detail := a.cfg.Tracer != nil
	if len(traces) == 0 {
		return nil, fmt.Errorf("core: all %d traces invalid (first: %s)", len(bundles), skipped[0].Reason)
	}
	report := &Report{TotalTraces: len(traces), Traces: traces, Skipped: skipped}
	for _, b := range bundles {
		if b.Event.AppID != "" {
			report.AppID = b.Event.AppID
			break
		}
	}

	// Corpus-wide scratch (grouped Step-2 columns, per-ID counts and
	// bases) lives for the whole finish: rankAndBase fills it, normalize
	// reads the bases out of it, rankImpacts reuses its count table.
	fin := a.fin.Get().(*finishScratch)
	defer a.fin.Put(fin)

	// Step 2: rank all instances of the same event across all traces.
	s2 := root.Child("step2.rank")
	basePower, err := a.rankAndBase(report.Traces, fin)
	rec2 := s2.End()
	if err != nil {
		return nil, err
	}

	// Step 3 fans out per trace: normalize each instance's power to its
	// event's base. Each trace only touches its own vectors, so any
	// worker count produces the same report.
	s3 := root.Child("step3.normalize")
	_ = parallel.ForEach(a.cfg.Parallelism, len(report.Traces), func(i int) error {
		if detail {
			sp := s3.Child("step3.trace")
			defer sp.End()
		}
		a.normalize(report.Traces[i], basePower)
		return nil
	})
	rec3 := s3.End()

	// Step 4 fans out per trace: attribute variation amplitude, detect
	// manifestation points, collect window keys.
	s4 := root.Child("step4.detect")
	err = parallel.ForEach(a.cfg.Parallelism, len(report.Traces), func(i int) error {
		if detail {
			sp := s4.Child("step4.trace")
			defer sp.End()
		}
		at := report.Traces[i]
		if err := a.detect(at); err != nil {
			return fmt.Errorf("trace %s: %w", at.TraceID, err)
		}
		return nil
	})
	rec4 := s4.End()
	if err != nil {
		return nil, err
	}
	for _, at := range report.Traces {
		if len(at.Manifestations) > 0 {
			report.ImpactedTraces++
		}
	}

	// Step 5: percentage-based sorting of events in the windows.
	s5 := root.Child("step5.impacts")
	a.rankImpacts(report, fin)
	rec5 := s5.End()
	recTotal := root.End()

	n := len(report.Traces)
	report.Stages = []StageTiming{
		{Step: 1, Name: "estimate", Wall: rec1.Wall(), CPU: rec1.CPU(), Items: len(bundles)},
		{Step: 2, Name: "rank", Wall: rec2.Wall(), CPU: rec2.CPU(), Items: n},
		{Step: 3, Name: "normalize", Wall: rec3.Wall(), CPU: rec3.CPU(), Items: n},
		{Step: 4, Name: "detect", Wall: rec4.Wall(), CPU: rec4.CPU(), Items: n},
		{Step: 5, Name: "impacts", Wall: rec5.Wall(), CPU: rec5.CPU(), Items: len(report.Impacted)},
		{Step: 0, Name: "total", Wall: recTotal.Wall(), CPU: recTotal.CPU(), Items: n},
	}
	mAnalyses.Inc()
	mTracesAnalyzed.Add(int64(n))
	mTracesSkipped.Add(int64(len(skipped)))
	gSkippedLast.Set(float64(len(skipped)))
	return report, nil
}

// stepOneAll runs Step 1 across the corpus through the shared pool.
// Each bundle gets its own power model (and its own seeded noise RNG)
// and results land in input order, so the fan-out is deterministic
// under any worker count. Under SkipInvalidTraces a failing bundle is
// demoted to a SkippedTrace entry instead of failing the batch —
// errors are captured per slot so one corrupt trace costs exactly one
// trace.
func (a *Analyzer) stepOneAll(bundles []*trace.TraceBundle, parent *obs.Span, detail bool) ([]*AnalyzedTrace, []SkippedTrace, error) {
	type slot struct {
		at  *AnalyzedTrace
		err error
	}
	slots, err := parallel.Map(a.cfg.Parallelism, len(bundles), func(i int) (slot, error) {
		if detail {
			sp := parent.Child("step1.trace")
			defer sp.End()
		}
		at, err := a.estimateEvents(bundles[i])
		return slot{at: at, err: err}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	traces := make([]*AnalyzedTrace, 0, len(slots))
	var skipped []SkippedTrace
	for i, s := range slots {
		switch {
		case s.err == nil:
			traces = append(traces, s.at)
		case a.cfg.SkipInvalidTraces:
			skipped = append(skipped, SkippedTrace{
				Index:   i,
				TraceID: bundles[i].Event.TraceID,
				Reason:  s.err.Error(),
			})
		default:
			return nil, nil, fmt.Errorf("trace %d (%s): %w", i, bundles[i].Event.TraceID, s.err)
		}
	}
	return traces, skipped, nil
}

// StepOne runs only Step 1 (event power estimation with device scaling)
// on one bundle. The CheckAll baseline of §IV-D is defined as "performs
// Step 1 of EnergyDx" and then reports every transition point, so it
// builds on this entry point.
func (a *Analyzer) StepOne(b *trace.TraceBundle) (*AnalyzedTrace, error) {
	return a.estimateEvents(b)
}

// estimateEvents implements Step 1 for one bundle: estimate the app's
// power from utilization with the device's model, scale to the reference
// device, and attribute mean power to each paired event instance. All
// working state — the model, the prefix-sum attribution index (answering
// each instance's mean-power query in O(log samples)), and the pairing
// buffer — is pooled scratch rebuilt in place, so the only allocations
// that survive the call are the returned trace's own vectors.
func (a *Analyzer) estimateEvents(b *trace.TraceBundle) (*AnalyzedTrace, error) {
	devName := b.Event.Device
	if devName == "" {
		devName = a.cfg.ReferenceDevice
	}
	profile, err := a.cfg.Devices.Lookup(devName)
	if err != nil {
		return nil, fmt.Errorf("step 1: %w", err)
	}
	sc := a.s1.Get().(*step1Scratch)
	defer a.s1.Put(sc)
	sc.model.Reset(profile, a.cfg.EstimationNoiseFrac, a.cfg.NoiseSeed)
	factor := device.ScaleFactor(&profile, &a.ref)
	if err := sc.index.BuildScaled(&sc.model, &b.Util, factor); err != nil {
		return nil, fmt.Errorf("step 1: %w", err)
	}

	instances, ids, err := b.Event.PairInto(sc.pair)
	if err != nil {
		return nil, fmt.Errorf("step 1: %w", err)
	}
	at := &AnalyzedTrace{
		TraceID: b.Event.TraceID,
		UserID:  b.Event.UserID,
		Device:  devName,
		Events:  make([]EventPower, 0, len(instances)),
		keyIDs:  make([]uint32, 0, len(instances)),
	}
	for i, in := range instances {
		p, ok := sc.index.MeanBetween(in.StartMS, in.EndMS)
		if !ok {
			continue // no power sample anywhere near the instance
		}
		at.Events = append(at.Events, EventPower{Instance: in, PowerMW: p})
		at.keyIDs = append(at.keyIDs, ids[i])
	}
	return at, nil
}

// rankAndBase implements Step 2 (cross-trace ranking of each event's
// instances) and derives the Step-3 normalization base: the configured
// percentile of each event key's power distribution across all traces.
// Returned bases are indexed by interned key ID and owned by fin.
//
// Layout: a counting pass groups every instance's power into one flat
// column ordered by key ID then (trace, event-index) — the same
// within-key order the map-of-slices assembly produced — with an offset
// table marking each ID's group. The per-key ranking fans out over the
// IDs present in this corpus; every (trace, event-index) slot belongs
// to exactly one key, so concurrent shards write disjoint rank
// elements and the result is identical at any worker count.
func (a *Analyzer) rankAndBase(traces []*AnalyzedTrace, fin *finishScratch) ([]float64, error) {
	total := 0
	for _, at := range traces {
		a.ensureKeyIDs(at)
		at.Rank = make([]float64, len(at.Events))
		total += len(at.Events)
	}
	K := a.keys.Len()
	fin.counts = growIntsZero(fin.counts, K)
	for _, at := range traces {
		for _, id := range at.keyIDs {
			fin.counts[id]++
		}
	}
	// The interner is append-only across the analyzer's lifetime, so
	// IDs from earlier corpora may have no instances here; they are
	// simply absent from the present list.
	fin.starts = growInts(fin.starts, K+1)
	fin.present = fin.present[:0]
	sum := 0
	for id := 0; id < K; id++ {
		fin.starts[id] = sum
		sum += fin.counts[id]
		if fin.counts[id] > 0 {
			fin.present = append(fin.present, uint32(id))
		}
	}
	fin.starts[K] = sum
	fin.powers = growFloats(fin.powers, total)
	fin.ranks = growFloats(fin.ranks, total)
	fin.cursors = growInts(fin.cursors, K)
	copy(fin.cursors, fin.starts[:K])
	for _, at := range traces {
		for i, id := range at.keyIDs {
			fin.powers[fin.cursors[id]] = at.Events[i].PowerMW
			fin.cursors[id]++
		}
	}
	bases := growFloatsZero(fin.bases, K)
	fin.bases = bases
	err := parallel.ForEach(a.cfg.Parallelism, len(fin.present), func(k int) error {
		id := fin.present[k]
		lo, hi := fin.starts[id], fin.starts[id+1]
		powers := fin.powers[lo:hi]
		ws := a.wrk.Get().(*workerScratch)
		defer a.wrk.Put(ws)
		if err := ws.st.Ranks(powers, fin.ranks[lo:hi]); err != nil {
			return fmt.Errorf("step 2: rank %s: %w", a.keys.Key(id), err)
		}
		b, err := ws.st.Percentile(powers, a.cfg.NormBasePercentile)
		if err != nil {
			return fmt.Errorf("step 3: base for %s: %w", a.keys.Key(id), err)
		}
		bases[id] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	copy(fin.cursors, fin.starts[:K])
	for _, at := range traces {
		for i, id := range at.keyIDs {
			at.Rank[i] = fin.ranks[fin.cursors[id]]
			fin.cursors[id]++
		}
	}
	return bases, nil
}

// normalize implements Step 3: each instance's power divided by its
// event's base power, "eliminating the relative power consumption
// differences among different events but keeping the difference among
// different instances of the same event". base is indexed by interned
// key ID (IDs beyond its length read as 0, i.e. no base).
func (a *Analyzer) normalize(at *AnalyzedTrace, base []float64) {
	a.ensureKeyIDs(at)
	at.NormPower = make([]float64, len(at.Events))
	for i := range at.Events {
		var b float64
		if id := at.keyIDs[i]; int(id) < len(base) {
			b = base[id]
		}
		if b <= 0 {
			// Power estimates include the device base term so this only
			// happens with degenerate inputs; fall back to raw power.
			at.NormPower[i] = at.Events[i].PowerMW
			continue
		}
		at.NormPower[i] = at.Events[i].PowerMW / b
	}
}

// detect implements Step 4: variation-amplitude attribution over monotone
// increasing runs, then IQR outlier detection with the upper outer fence.
func (a *Analyzer) detect(at *AnalyzedTrace) error {
	if a.cfg.SingleStepAmplitude {
		at.Amplitude = SingleStepAmplitudes(at.NormPower)
	} else {
		at.Amplitude = VariationAmplitudes(at.NormPower)
	}
	if len(at.Amplitude) < 2 {
		at.Manifestations = nil
		return nil
	}
	ws := a.wrk.Get().(*workerScratch)
	defer a.wrk.Put(ws)
	fences, err := ws.st.Fences(at.Amplitude, a.cfg.FenceMultiplier)
	if err != nil {
		return fmt.Errorf("step 4: %w", err)
	}
	at.Fence = fences.UpperOuter
	// Allocate fresh rather than reusing at.Manifestations[:0]: when a
	// caller re-analyzes a previously analyzed trace, truncating the old
	// slice would alias (and clobber) backing arrays the caller may
	// still hold.
	at.Manifestations = nil
	for i, v := range at.Amplitude {
		// Only positive amplitudes mark a low-to-high transition (the
		// ABD manifests when power rises, not when it falls back), and
		// the rise must be material (MinAmplitude) so a degenerate
		// near-zero IQR on a flat trace cannot promote jitter.
		if v > fences.UpperOuter && v > 0 && v >= a.cfg.MinAmplitude {
			at.Manifestations = append(at.Manifestations, i)
		}
	}
	at.WindowKeys = a.windowKeys(at, ws)
	return nil
}

// runEpsilon is the minimum relative increase for a step to extend a
// monotone run: without it, sub-percent measurement jitter bridges flat
// plateaus into a later jump and smears one manifestation's amplitude
// across many unrelated events.
const runEpsilon = 0.01

// VariationAmplitudes computes the Step-4 metric for a normalized power
// series: V_i = p_{i+1} - p_i, except that when the series keeps
// increasing from i through i+n, V_i = p_{i+n} - p_i (the paper's
// monotone-run extension for gradually-manifesting ABDs). The last
// element's amplitude is 0. Exported for the ablation benchmarks.
func VariationAmplitudes(norm []float64) []float64 {
	rising := func(a, b float64) bool { return b > a*(1+runEpsilon) }
	v := make([]float64, len(norm))
	for i := 0; i+1 < len(norm); i++ {
		j := i + 1
		for j+1 < len(norm) && rising(norm[j], norm[j+1]) && rising(norm[j-1], norm[j]) {
			j++
		}
		if j > i+1 {
			v[i] = norm[j] - norm[i]
		} else {
			v[i] = norm[i+1] - norm[i]
		}
	}
	return v
}

// SingleStepAmplitudes is the ablation variant of VariationAmplitudes
// without the monotone-run extension: V_i = p_{i+1} - p_i, 0 for the
// last element.
func SingleStepAmplitudes(norm []float64) []float64 {
	v := make([]float64, len(norm))
	for i := 0; i+1 < len(norm); i++ {
		v[i] = norm[i+1] - norm[i]
	}
	return v
}

// windowKeys implements the first half of Step 5: the distinct event keys
// within the manifestation window of each detected point. Dedup runs on
// the interned-ID column against a pooled seen bitmap; the resulting IDs
// are sorted in the keys' lexicographic order, so the materialized
// WindowKeys list is identical to the map-and-sort path it replaced.
// The trace's windowIDs column is refreshed alongside (freshly
// allocated, like Manifestations, so re-analysis cannot clobber arrays
// behind a previously returned report).
func (a *Analyzer) windowKeys(at *AnalyzedTrace, ws *workerScratch) []trace.EventKey {
	a.ensureKeyIDs(at)
	K := a.keys.Len()
	if cap(ws.seen) < K {
		ws.seen = make([]bool, K)
	}
	seen := ws.seen[:K]
	ids := ws.ids[:0]
	for _, m := range at.Manifestations {
		lo := m - a.cfg.WindowEvents
		hi := m + a.cfg.WindowEvents
		if lo < 0 {
			lo = 0
		}
		if hi >= len(at.Events) {
			hi = len(at.Events) - 1
		}
		for i := lo; i <= hi; i++ {
			if id := at.keyIDs[i]; !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	ws.sortIDs(a.keys, ids)
	keys := make([]trace.EventKey, len(ids))
	at.windowIDs = make([]uint32, len(ids))
	for i, id := range ids {
		keys[i] = a.keys.Key(id)
		at.windowIDs[i] = id
		seen[id] = false
	}
	ws.ids = ids[:0]
	return keys
}

// rankImpacts implements the second half of Step 5: for every event seen
// in any window, the percentage of traces it impacted, sorted by
// closeness to the developer-reported impacted-user percentage (or by
// percentage descending when none was provided). Window membership is
// counted on the interned-ID columns into fin's count table; the
// comparator is a strict total order (distinct impacts have distinct
// keys), so assembling candidates in ID order instead of map order
// yields the same sorted result.
func (a *Analyzer) rankImpacts(report *Report, fin *finishScratch) {
	K := a.keys.Len()
	fin.counts = growIntsZero(fin.counts, K)
	for _, at := range report.Traces {
		for _, id := range at.windowIDs {
			fin.counts[id]++
		}
	}
	report.Impacted = a.impactsFromCounts(fin.counts, report.TotalTraces)
}

// impactsFromCounts materializes and sorts the Step-5 impact table from
// a per-key-ID window-membership count column. It is shared by the
// batch finish (counts filled fresh by rankImpacts) and the incremental
// engine (counts maintained under add/remove), so both paths assemble
// and order impacts through identical code.
func (a *Analyzer) impactsFromCounts(counts []int, totalTraces int) []Impact {
	distinct := 0
	for _, n := range counts {
		if n > 0 {
			distinct++
		}
	}
	impacts := make([]Impact, 0, distinct)
	for id, n := range counts {
		if n <= 0 {
			continue
		}
		impacts = append(impacts, Impact{
			Key:     a.keys.Key(uint32(id)),
			Traces:  n,
			Percent: 100 * float64(n) / float64(totalTraces),
		})
	}
	target := a.cfg.DeveloperImpactPercent
	sort.Slice(impacts, func(x, y int) bool {
		a, b := impacts[x], impacts[y]
		if target > 0 {
			da, db := absFloat(a.Percent-target), absFloat(b.Percent-target)
			if da != db {
				return da < db
			}
		} else if a.Percent != b.Percent {
			return a.Percent > b.Percent
		}
		if a.Key.Class != b.Key.Class {
			return a.Key.Class < b.Key.Class
		}
		return a.Key.Callback < b.Key.Callback
	})
	return impacts
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
