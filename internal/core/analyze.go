package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Analysis-layer metrics on the process registry: how many diagnoses
// ran, how many traces they covered, and — live, not just post-hoc in
// report files — how many traces the most recent run skipped.
var (
	mAnalyses       = obs.Default.Counter("core_analyses_total", "completed core.Analyze runs")
	mTracesAnalyzed = obs.Default.Counter("core_traces_analyzed_total", "traces that passed Step 1 across all analyses")
	mTracesSkipped  = obs.Default.Counter("core_traces_skipped_total", "traces excluded under SkipInvalidTraces across all analyses")
	gSkippedLast    = obs.Default.Gauge("core_skipped_traces", "traces skipped by the most recent analysis")
)

// EventPower is one event instance with its Step-1 power estimate, scaled
// to the reference device.
type EventPower struct {
	Instance trace.Instance `json:"instance"`
	PowerMW  float64        `json:"powerMilliwatts"`
}

// AnalyzedTrace carries one trace through all five steps; the
// intermediate vectors are retained because the paper's diagnosis figures
// (7a/7b/7c, 9, 12, 15) plot exactly them.
type AnalyzedTrace struct {
	TraceID string `json:"traceId"`
	UserID  string `json:"userId"`
	Device  string `json:"device"`

	// Events in chronological order with raw scaled power (Step 1).
	Events []EventPower `json:"events"`
	// Rank[i] is the cross-trace rank of Events[i] among instances of
	// the same event key (Step 2).
	Rank []float64 `json:"rank"`
	// NormPower[i] is Events[i].PowerMW normalized to the event's base
	// power (Step 3).
	NormPower []float64 `json:"normPower"`
	// Amplitude[i] is the variation amplitude of Events[i] (Step 4).
	Amplitude []float64 `json:"amplitude"`
	// Fence is the Step-4 upper outer fence for this trace.
	Fence float64 `json:"fence"`
	// Manifestations are indices into Events detected as manifestation
	// points (Step 4).
	Manifestations []int `json:"manifestations"`
	// WindowKeys are the distinct event keys inside the manifestation
	// windows of this trace (Step 5 input).
	WindowKeys []trace.EventKey `json:"windowKeys"`
}

// Impact is one reported event with the fraction of traces it impacted
// (Step 5 output).
type Impact struct {
	Key     trace.EventKey `json:"key"`
	Traces  int            `json:"traces"`
	Percent float64        `json:"percent"`
}

// SkippedTrace records one trace excluded from analysis under
// Config.SkipInvalidTraces.
type SkippedTrace struct {
	// Index is the trace's position in the submitted corpus.
	Index int `json:"index"`
	// TraceID identifies the trace when its envelope was readable.
	TraceID string `json:"traceId,omitempty"`
	// Reason is the Step-1 error that disqualified the trace.
	Reason string `json:"reason"`
}

// Report is the complete diagnosis for one app's trace corpus.
type Report struct {
	AppID       string           `json:"appId"`
	TotalTraces int              `json:"totalTraces"`
	Traces      []*AnalyzedTrace `json:"traces"`
	// Impacted lists every event seen in any manifestation window,
	// sorted by the Step-5 criterion.
	Impacted []Impact `json:"impacted"`
	// ImpactedTraces is the number of traces with at least one detected
	// manifestation point.
	ImpactedTraces int `json:"impactedTraces"`
	// Skipped lists traces excluded under Config.SkipInvalidTraces.
	// TotalTraces counts only the analyzed traces.
	Skipped []SkippedTrace `json:"skipped,omitempty"`

	// Stages is the per-step wall/CPU breakdown of this analysis,
	// sourced from spans (energydx -stats renders it). Excluded from
	// JSON so golden reports and cross-worker byte-identity are
	// untouched by timing jitter.
	Stages []StageTiming `json:"-"`
}

// StageTiming is one pipeline stage's latency contribution. Step 0 is
// the whole-analysis total.
type StageTiming struct {
	Step  int
	Name  string
	Wall  time.Duration
	CPU   time.Duration
	Items int
}

// TopEvents returns the first n reported events (all if n <= 0 or beyond
// the list).
func (r *Report) TopEvents(n int) []Impact {
	if n <= 0 || n > len(r.Impacted) {
		n = len(r.Impacted)
	}
	out := make([]Impact, n)
	copy(out, r.Impacted[:n])
	return out
}

// TopKeys returns the event keys of the first n reported events.
func (r *Report) TopKeys(n int) []trace.EventKey {
	top := r.TopEvents(n)
	keys := make([]trace.EventKey, len(top))
	for i, im := range top {
		keys[i] = im.Key
	}
	return keys
}

// Analyzer runs the 5-step manifestation analysis.
type Analyzer struct {
	cfg Config
	ref device.Profile
}

// NewAnalyzer validates the configuration and builds an analyzer.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ref, err := cfg.Devices.Lookup(cfg.ReferenceDevice)
	if err != nil {
		return nil, err
	}
	return &Analyzer{cfg: cfg, ref: ref}, nil
}

// ErrNoTraces is returned when Analyze receives an empty corpus.
var ErrNoTraces = errors.New("core: no traces to analyze")

// Analyze runs all five steps over a corpus of trace bundles collected
// from different users and returns the diagnosis report. Each step is
// timed against the monotonic clock (Report.Stages); a caller-provided
// Config.Tracer additionally receives one span per worker task.
func (a *Analyzer) Analyze(bundles []*trace.TraceBundle) (*Report, error) {
	if len(bundles) == 0 {
		return nil, ErrNoTraces
	}
	tr, detail := a.cfg.Tracer, a.cfg.Tracer != nil
	if tr == nil {
		tr = obs.NewTracer()
	}
	root := tr.Start("analyze")

	// Step 1: power estimation of events, per trace (parallelizable:
	// traces are independent).
	s1 := root.Child("step1.estimate")
	traces, skipped, err := a.stepOneAll(bundles, s1, detail)
	if err != nil {
		return nil, err
	}
	rec1 := s1.End()
	return a.finish(bundles, traces, skipped, root, rec1)
}

// finish runs Steps 2–5 over already-estimated traces and assembles the
// report. It is the single implementation behind both the batch path
// (Analyze, which computes Step 1 fresh) and the incremental path
// (IncrementalAnalyzer.Report, which replays cached Step-1 outputs), so
// the two are byte-identical by construction. bundles is the submitted
// corpus in order (including invalid entries), used for the AppID scan
// and the Step-1 item count; traces and skipped partition it.
func (a *Analyzer) finish(bundles []*trace.TraceBundle, traces []*AnalyzedTrace, skipped []SkippedTrace, root *obs.Span, rec1 obs.SpanRecord) (*Report, error) {
	detail := a.cfg.Tracer != nil
	if len(traces) == 0 {
		return nil, fmt.Errorf("core: all %d traces invalid (first: %s)", len(bundles), skipped[0].Reason)
	}
	report := &Report{TotalTraces: len(traces), Traces: traces, Skipped: skipped}
	for _, b := range bundles {
		if b.Event.AppID != "" {
			report.AppID = b.Event.AppID
			break
		}
	}

	// Step 2: rank all instances of the same event across all traces.
	s2 := root.Child("step2.rank")
	basePower, err := a.rankAndBase(report.Traces)
	rec2 := s2.End()
	if err != nil {
		return nil, err
	}

	// Step 3 fans out per trace: normalize each instance's power to its
	// event's base. Each trace only touches its own vectors, so any
	// worker count produces the same report.
	s3 := root.Child("step3.normalize")
	_ = parallel.ForEach(a.cfg.Parallelism, len(report.Traces), func(i int) error {
		if detail {
			sp := s3.Child("step3.trace")
			defer sp.End()
		}
		a.normalize(report.Traces[i], basePower)
		return nil
	})
	rec3 := s3.End()

	// Step 4 fans out per trace: attribute variation amplitude, detect
	// manifestation points, collect window keys.
	s4 := root.Child("step4.detect")
	err = parallel.ForEach(a.cfg.Parallelism, len(report.Traces), func(i int) error {
		if detail {
			sp := s4.Child("step4.trace")
			defer sp.End()
		}
		at := report.Traces[i]
		if err := a.detect(at); err != nil {
			return fmt.Errorf("trace %s: %w", at.TraceID, err)
		}
		return nil
	})
	rec4 := s4.End()
	if err != nil {
		return nil, err
	}
	for _, at := range report.Traces {
		if len(at.Manifestations) > 0 {
			report.ImpactedTraces++
		}
	}

	// Step 5: percentage-based sorting of events in the windows.
	s5 := root.Child("step5.impacts")
	a.rankImpacts(report)
	rec5 := s5.End()
	recTotal := root.End()

	n := len(report.Traces)
	report.Stages = []StageTiming{
		{Step: 1, Name: "estimate", Wall: rec1.Wall(), CPU: rec1.CPU(), Items: len(bundles)},
		{Step: 2, Name: "rank", Wall: rec2.Wall(), CPU: rec2.CPU(), Items: n},
		{Step: 3, Name: "normalize", Wall: rec3.Wall(), CPU: rec3.CPU(), Items: n},
		{Step: 4, Name: "detect", Wall: rec4.Wall(), CPU: rec4.CPU(), Items: n},
		{Step: 5, Name: "impacts", Wall: rec5.Wall(), CPU: rec5.CPU(), Items: len(report.Impacted)},
		{Step: 0, Name: "total", Wall: recTotal.Wall(), CPU: recTotal.CPU(), Items: n},
	}
	mAnalyses.Inc()
	mTracesAnalyzed.Add(int64(n))
	mTracesSkipped.Add(int64(len(skipped)))
	gSkippedLast.Set(float64(len(skipped)))
	return report, nil
}

// stepOneAll runs Step 1 across the corpus through the shared pool.
// Each bundle gets its own power model (and its own seeded noise RNG)
// and results land in input order, so the fan-out is deterministic
// under any worker count. Under SkipInvalidTraces a failing bundle is
// demoted to a SkippedTrace entry instead of failing the batch —
// errors are captured per slot so one corrupt trace costs exactly one
// trace.
func (a *Analyzer) stepOneAll(bundles []*trace.TraceBundle, parent *obs.Span, detail bool) ([]*AnalyzedTrace, []SkippedTrace, error) {
	type slot struct {
		at  *AnalyzedTrace
		err error
	}
	slots, err := parallel.Map(a.cfg.Parallelism, len(bundles), func(i int) (slot, error) {
		if detail {
			sp := parent.Child("step1.trace")
			defer sp.End()
		}
		at, err := a.estimateEvents(bundles[i])
		return slot{at: at, err: err}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	traces := make([]*AnalyzedTrace, 0, len(slots))
	var skipped []SkippedTrace
	for i, s := range slots {
		switch {
		case s.err == nil:
			traces = append(traces, s.at)
		case a.cfg.SkipInvalidTraces:
			skipped = append(skipped, SkippedTrace{
				Index:   i,
				TraceID: bundles[i].Event.TraceID,
				Reason:  s.err.Error(),
			})
		default:
			return nil, nil, fmt.Errorf("trace %d (%s): %w", i, bundles[i].Event.TraceID, s.err)
		}
	}
	return traces, skipped, nil
}

// StepOne runs only Step 1 (event power estimation with device scaling)
// on one bundle. The CheckAll baseline of §IV-D is defined as "performs
// Step 1 of EnergyDx" and then reports every transition point, so it
// builds on this entry point.
func (a *Analyzer) StepOne(b *trace.TraceBundle) (*AnalyzedTrace, error) {
	return a.estimateEvents(b)
}

// estimateEvents implements Step 1 for one bundle: estimate the app's
// power from utilization with the device's model, scale to the reference
// device, and attribute mean power to each paired event instance.
func (a *Analyzer) estimateEvents(b *trace.TraceBundle) (*AnalyzedTrace, error) {
	devName := b.Event.Device
	if devName == "" {
		devName = a.cfg.ReferenceDevice
	}
	profile, err := a.cfg.Devices.Lookup(devName)
	if err != nil {
		return nil, fmt.Errorf("step 1: %w", err)
	}
	var opts []power.Option
	if a.cfg.EstimationNoiseFrac > 0 {
		opts = append(opts, power.WithNoise(a.cfg.EstimationNoiseFrac, a.cfg.NoiseSeed))
	}
	model := power.NewModel(profile, opts...)
	pt, err := model.Estimate(&b.Util)
	if err != nil {
		return nil, fmt.Errorf("step 1: %w", err)
	}
	pt = power.Scale(pt, &profile, &a.ref)

	instances, err := b.Event.Pair()
	if err != nil {
		return nil, fmt.Errorf("step 1: %w", err)
	}
	at := &AnalyzedTrace{
		TraceID: b.Event.TraceID,
		UserID:  b.Event.UserID,
		Device:  devName,
		Events:  make([]EventPower, 0, len(instances)),
	}
	// The prefix-sum index answers each instance's mean-power query in
	// O(log samples); it is built once per bundle, so attribution costs
	// O(samples + events * log samples) instead of O(events * samples).
	// Interval semantics ([start, end) with nearest-sample fallback)
	// live in power.Index.
	idx := power.NewIndex(pt)
	for _, in := range instances {
		p, ok := idx.MeanBetween(in.StartMS, in.EndMS)
		if !ok {
			continue // no power sample anywhere near the instance
		}
		at.Events = append(at.Events, EventPower{Instance: in, PowerMW: p})
	}
	return at, nil
}

// rankAndBase implements Step 2 (cross-trace ranking of each event's
// instances) and derives the Step-3 normalization base: the configured
// percentile of each event key's power distribution across all traces.
func (a *Analyzer) rankAndBase(traces []*AnalyzedTrace) (map[trace.EventKey]float64, error) {
	type ref struct {
		trace *AnalyzedTrace
		idx   int
	}
	byKey := make(map[trace.EventKey][]ref)
	powersByKey := make(map[trace.EventKey][]float64)
	for _, at := range traces {
		at.Rank = make([]float64, len(at.Events))
		for i, ep := range at.Events {
			byKey[ep.Instance.Key] = append(byKey[ep.Instance.Key], ref{at, i})
			powersByKey[ep.Instance.Key] = append(powersByKey[ep.Instance.Key], ep.PowerMW)
		}
	}
	// The per-key ranking/base computation fans out over shards of the
	// sorted key list. Every (trace, event-index) slot belongs to
	// exactly one key, so concurrent shards write disjoint Rank
	// elements; the per-key power vectors were assembled serially in
	// trace order above, so ranks and bases are identical at any worker
	// count.
	keys := make([]trace.EventKey, 0, len(byKey))
	for key := range byKey {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(x, y int) bool {
		if keys[x].Class != keys[y].Class {
			return keys[x].Class < keys[y].Class
		}
		return keys[x].Callback < keys[y].Callback
	})
	bases := make([]float64, len(keys))
	err := parallel.ForEach(a.cfg.Parallelism, len(keys), func(k int) error {
		key := keys[k]
		powers := powersByKey[key]
		ranks, err := stats.Ranks(powers)
		if err != nil {
			return fmt.Errorf("step 2: rank %s: %w", key, err)
		}
		for i, r := range byKey[key] {
			r.trace.Rank[r.idx] = ranks[i]
		}
		b, err := stats.Percentile(powers, a.cfg.NormBasePercentile)
		if err != nil {
			return fmt.Errorf("step 3: base for %s: %w", key, err)
		}
		bases[k] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := make(map[trace.EventKey]float64, len(keys))
	for k, key := range keys {
		base[key] = bases[k]
	}
	return base, nil
}

// normalize implements Step 3: each instance's power divided by its
// event's base power, "eliminating the relative power consumption
// differences among different events but keeping the difference among
// different instances of the same event".
func (a *Analyzer) normalize(at *AnalyzedTrace, base map[trace.EventKey]float64) {
	at.NormPower = make([]float64, len(at.Events))
	for i, ep := range at.Events {
		b := base[ep.Instance.Key]
		if b <= 0 {
			// Power estimates include the device base term so this only
			// happens with degenerate inputs; fall back to raw power.
			at.NormPower[i] = ep.PowerMW
			continue
		}
		at.NormPower[i] = ep.PowerMW / b
	}
}

// detect implements Step 4: variation-amplitude attribution over monotone
// increasing runs, then IQR outlier detection with the upper outer fence.
func (a *Analyzer) detect(at *AnalyzedTrace) error {
	if a.cfg.SingleStepAmplitude {
		at.Amplitude = SingleStepAmplitudes(at.NormPower)
	} else {
		at.Amplitude = VariationAmplitudes(at.NormPower)
	}
	if len(at.Amplitude) < 2 {
		at.Manifestations = nil
		return nil
	}
	fences, err := stats.ComputeFences(at.Amplitude, a.cfg.FenceMultiplier)
	if err != nil {
		return fmt.Errorf("step 4: %w", err)
	}
	at.Fence = fences.UpperOuter
	// Allocate fresh rather than reusing at.Manifestations[:0]: when a
	// caller re-analyzes a previously analyzed trace, truncating the old
	// slice would alias (and clobber) backing arrays the caller may
	// still hold.
	at.Manifestations = nil
	for i, v := range at.Amplitude {
		// Only positive amplitudes mark a low-to-high transition (the
		// ABD manifests when power rises, not when it falls back), and
		// the rise must be material (MinAmplitude) so a degenerate
		// near-zero IQR on a flat trace cannot promote jitter.
		if v > fences.UpperOuter && v > 0 && v >= a.cfg.MinAmplitude {
			at.Manifestations = append(at.Manifestations, i)
		}
	}
	at.WindowKeys = a.windowKeys(at)
	return nil
}

// runEpsilon is the minimum relative increase for a step to extend a
// monotone run: without it, sub-percent measurement jitter bridges flat
// plateaus into a later jump and smears one manifestation's amplitude
// across many unrelated events.
const runEpsilon = 0.01

// VariationAmplitudes computes the Step-4 metric for a normalized power
// series: V_i = p_{i+1} - p_i, except that when the series keeps
// increasing from i through i+n, V_i = p_{i+n} - p_i (the paper's
// monotone-run extension for gradually-manifesting ABDs). The last
// element's amplitude is 0. Exported for the ablation benchmarks.
func VariationAmplitudes(norm []float64) []float64 {
	rising := func(a, b float64) bool { return b > a*(1+runEpsilon) }
	v := make([]float64, len(norm))
	for i := 0; i+1 < len(norm); i++ {
		j := i + 1
		for j+1 < len(norm) && rising(norm[j], norm[j+1]) && rising(norm[j-1], norm[j]) {
			j++
		}
		if j > i+1 {
			v[i] = norm[j] - norm[i]
		} else {
			v[i] = norm[i+1] - norm[i]
		}
	}
	return v
}

// SingleStepAmplitudes is the ablation variant of VariationAmplitudes
// without the monotone-run extension: V_i = p_{i+1} - p_i, 0 for the
// last element.
func SingleStepAmplitudes(norm []float64) []float64 {
	v := make([]float64, len(norm))
	for i := 0; i+1 < len(norm); i++ {
		v[i] = norm[i+1] - norm[i]
	}
	return v
}

// windowKeys implements the first half of Step 5: the distinct event keys
// within the manifestation window of each detected point.
func (a *Analyzer) windowKeys(at *AnalyzedTrace) []trace.EventKey {
	seen := make(map[trace.EventKey]struct{})
	for _, m := range at.Manifestations {
		lo := m - a.cfg.WindowEvents
		hi := m + a.cfg.WindowEvents
		if lo < 0 {
			lo = 0
		}
		if hi >= len(at.Events) {
			hi = len(at.Events) - 1
		}
		for i := lo; i <= hi; i++ {
			seen[at.Events[i].Instance.Key] = struct{}{}
		}
	}
	keys := make([]trace.EventKey, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(x, y int) bool {
		if keys[x].Class != keys[y].Class {
			return keys[x].Class < keys[y].Class
		}
		return keys[x].Callback < keys[y].Callback
	})
	return keys
}

// rankImpacts implements the second half of Step 5: for every event seen
// in any window, the percentage of traces it impacted, sorted by
// closeness to the developer-reported impacted-user percentage (or by
// percentage descending when none was provided).
func (a *Analyzer) rankImpacts(report *Report) {
	counts := make(map[trace.EventKey]int)
	for _, at := range report.Traces {
		for _, k := range at.WindowKeys {
			counts[k]++
		}
	}
	impacts := make([]Impact, 0, len(counts))
	for k, n := range counts {
		impacts = append(impacts, Impact{
			Key:     k,
			Traces:  n,
			Percent: 100 * float64(n) / float64(report.TotalTraces),
		})
	}
	target := a.cfg.DeveloperImpactPercent
	sort.Slice(impacts, func(x, y int) bool {
		a, b := impacts[x], impacts[y]
		if target > 0 {
			da, db := absFloat(a.Percent-target), absFloat(b.Percent-target)
			if da != db {
				return da < db
			}
		} else if a.Percent != b.Percent {
			return a.Percent > b.Percent
		}
		if a.Key.Class != b.Key.Class {
			return a.Key.Class < b.Key.Class
		}
		return a.Key.Callback < b.Key.Callback
	})
	report.Impacted = impacts
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
