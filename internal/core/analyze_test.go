package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/apk"
	"repro/internal/trace"
)

// spec describes one synthetic event occurrence: the event key, when it
// runs, and the CPU level the app holds for its duration.
type spec struct {
	cls, cb  string
	durMS    int64
	cpuLevel float64
}

// buildBundle lays the specs out back-to-back starting at t=0, emitting
// enter/exit records and 500 ms utilization samples whose CPU level
// follows whichever event is active.
func buildBundle(traceID, userID, dev string, specs []spec) *trace.TraceBundle {
	b := &trace.TraceBundle{
		Event: trace.EventTrace{AppID: "test", UserID: userID, Device: dev, TraceID: traceID},
		Util:  trace.UtilizationTrace{AppID: "test", PID: 1, PeriodMS: 500},
	}
	t := int64(0)
	type span struct {
		start, end int64
		level      float64
	}
	var spans []span
	for _, s := range specs {
		key := trace.EventKey{Class: s.cls, Callback: s.cb}
		b.Event.Records = append(b.Event.Records,
			trace.Record{TimestampMS: t, Dir: trace.Enter, Key: key},
			trace.Record{TimestampMS: t + s.durMS, Dir: trace.Exit, Key: key},
		)
		spans = append(spans, span{t, t + s.durMS, s.cpuLevel})
		t += s.durMS
	}
	for ts := int64(0); ts <= t; ts += 500 {
		var u trace.UtilizationVector
		for _, sp := range spans {
			if ts >= sp.start && ts < sp.end {
				u.Set(trace.CPU, sp.level)
			}
		}
		b.Util.Samples = append(b.Util.Samples, trace.UtilizationSample{TimestampMS: ts, Util: u})
	}
	return b
}

// normalTrace alternates a cheap UI event ("circle") and an expensive
// fetch event ("square"): raw power transitions exist, but they are
// caused by event power differences, not an ABD.
func normalTrace(id, user string) *trace.TraceBundle {
	var specs []spec
	for i := 0; i < 8; i++ {
		specs = append(specs,
			spec{"LApp", "onClick", 2000, 0.2},
			spec{"LApp", "checkMail", 2000, 0.8},
		)
	}
	return buildBundle(id, user, "nexus6", specs)
}

// abdTrace is a normal trace whose tail is impacted by an ABD: after the
// trigger event, every instance consumes high power regardless of kind.
func abdTrace(id, user string) *trace.TraceBundle {
	var specs []spec
	for i := 0; i < 6; i++ {
		specs = append(specs,
			spec{"LApp", "onClick", 2000, 0.2},
			spec{"LApp", "checkMail", 2000, 0.8},
		)
	}
	specs = append(specs, spec{"LApp/Settings", "onResume", 2000, 0.2}) // trigger
	for i := 0; i < 6; i++ {
		specs = append(specs,
			spec{"LApp", "onClick", 2000, 0.95},
			spec{"LApp", "checkMail", 2000, 0.98},
		)
	}
	return buildBundle(id, user, "nexus6", specs)
}

func corpus(nNormal, nABD int) []*trace.TraceBundle {
	var bundles []*trace.TraceBundle
	for i := 0; i < nNormal; i++ {
		bundles = append(bundles, normalTrace(
			"n"+string(rune('0'+i)), "user-normal-"+string(rune('0'+i))))
	}
	for i := 0; i < nABD; i++ {
		bundles = append(bundles, abdTrace(
			"a"+string(rune('0'+i)), "user-abd-"+string(rune('0'+i))))
	}
	return bundles
}

func TestNewAnalyzerValidation(t *testing.T) {
	bad := []Config{
		{NormBasePercentile: -1, FenceMultiplier: 3, ReferenceDevice: "nexus6"},
		{NormBasePercentile: 101, FenceMultiplier: 3, ReferenceDevice: "nexus6"},
		{NormBasePercentile: 10, FenceMultiplier: 0, ReferenceDevice: "nexus6"},
		{NormBasePercentile: 10, FenceMultiplier: 3, WindowEvents: -1, ReferenceDevice: "nexus6"},
		{NormBasePercentile: 10, FenceMultiplier: 3, ReferenceDevice: "no-such-device"},
	}
	for i, cfg := range bad {
		if _, err := NewAnalyzer(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewAnalyzer(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Analyze(nil); !errors.Is(err, ErrNoTraces) {
		t.Errorf("err = %v", err)
	}
}

func TestNormalUsageProducesNoManifestation(t *testing.T) {
	// The whole point of Steps 2-3: power transitions caused by raw
	// power differences between event kinds must be normalized away.
	a, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	report, err := a.Analyze(corpus(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if report.ImpactedTraces != 0 {
		for _, at := range report.Traces {
			if len(at.Manifestations) > 0 {
				t.Logf("trace %s norm=%v", at.TraceID, at.NormPower)
			}
		}
		t.Fatalf("%d normal traces flagged as impacted", report.ImpactedTraces)
	}
	if len(report.Impacted) != 0 {
		t.Errorf("events reported on normal corpus: %v", report.Impacted)
	}
}

func TestABDDetectedNearTrigger(t *testing.T) {
	cfg := DefaultConfig()
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := a.Analyze(corpus(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if report.ImpactedTraces != 2 {
		t.Fatalf("impacted traces = %d, want 2", report.ImpactedTraces)
	}
	// The trigger event (Settings onResume) must be inside a
	// manifestation window of every ABD trace.
	trigger := trace.EventKey{Class: "LApp/Settings", Callback: "onResume"}
	var triggerImpact *Impact
	for i := range report.Impacted {
		if report.Impacted[i].Key == trigger {
			triggerImpact = &report.Impacted[i]
		}
	}
	if triggerImpact == nil {
		t.Fatalf("trigger event not reported; impacted = %v", report.Impacted)
	}
	if triggerImpact.Traces != 2 {
		t.Errorf("trigger impacted %d traces, want 2", triggerImpact.Traces)
	}
	wantPct := 100 * 2.0 / 8.0
	if math.Abs(triggerImpact.Percent-wantPct) > 1e-9 {
		t.Errorf("trigger percent = %v, want %v", triggerImpact.Percent, wantPct)
	}
}

func TestDeveloperPercentSorting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeveloperImpactPercent = 25 // 2 ABD traces of 8
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := a.Analyze(corpus(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Impacted) == 0 {
		t.Fatal("nothing reported")
	}
	// Every event at the front must be at least as close to 25% as the
	// ones behind it.
	for i := 1; i < len(report.Impacted); i++ {
		da := math.Abs(report.Impacted[i-1].Percent - 25)
		db := math.Abs(report.Impacted[i].Percent - 25)
		if da > db {
			t.Errorf("impact %d (%.1f%%) further from target than %d (%.1f%%)",
				i-1, report.Impacted[i-1].Percent, i, report.Impacted[i].Percent)
		}
	}
	// The trigger event must be in the tied group of events exactly at
	// the target percentage (paper Table II shows the same ties).
	foundTrigger := false
	for _, im := range report.Impacted {
		if math.Abs(im.Percent-25) > 1e-9 {
			break
		}
		if im.Key.Class == "LApp/Settings" {
			foundTrigger = true
		}
	}
	if !foundTrigger {
		t.Errorf("trigger not in the exact-match group: %v", report.Impacted)
	}
}

func TestTopEventsAndKeys(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeveloperImpactPercent = 25
	a, _ := NewAnalyzer(cfg)
	report, err := a.Analyze(corpus(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	all := report.TopEvents(0)
	if len(all) != len(report.Impacted) {
		t.Errorf("TopEvents(0) = %d, want all %d", len(all), len(report.Impacted))
	}
	one := report.TopEvents(1)
	if len(one) != 1 {
		t.Fatalf("TopEvents(1) = %v", one)
	}
	keys := report.TopKeys(1)
	if len(keys) != 1 || keys[0] != one[0].Key {
		t.Errorf("TopKeys mismatch: %v vs %v", keys, one)
	}
	over := report.TopEvents(1000)
	if len(over) != len(report.Impacted) {
		t.Errorf("TopEvents(1000) = %d", len(over))
	}
}

func TestVariationAmplitudes(t *testing.T) {
	tests := []struct {
		name string
		norm []float64
		want []float64
	}{
		{"empty", nil, []float64{}},
		{"single", []float64{1}, []float64{0}},
		{"flat", []float64{1, 1, 1}, []float64{0, 0, 0}},
		{"single step", []float64{1, 3, 3}, []float64{2, 0, 0}},
		{"negative step", []float64{3, 1, 1}, []float64{-2, 0, 0}},
		// Monotone run: amplitude of the run start spans the whole rise.
		{"gradual rise", []float64{1, 2, 3, 4, 4}, []float64{3, 2, 1, 0, 0}},
		{"rise then fall", []float64{1, 2, 3, 1}, []float64{2, 1, -2, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := VariationAmplitudes(tt.norm)
			if len(got) != len(tt.want) {
				t.Fatalf("len = %d, want %d", len(got), len(tt.want))
			}
			for i := range tt.want {
				if math.Abs(got[i]-tt.want[i]) > 1e-12 {
					t.Fatalf("V = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestIntermediateVectorsExposed(t *testing.T) {
	a, _ := NewAnalyzer(DefaultConfig())
	report, err := a.Analyze(corpus(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range report.Traces {
		n := len(at.Events)
		if len(at.Rank) != n || len(at.NormPower) != n || len(at.Amplitude) != n {
			t.Errorf("trace %s: vector lengths %d/%d/%d for %d events",
				at.TraceID, len(at.Rank), len(at.NormPower), len(at.Amplitude), n)
		}
		for i, r := range at.Rank {
			if r < 1 {
				t.Errorf("trace %s event %d rank %v < 1", at.TraceID, i, r)
			}
		}
		for i, p := range at.NormPower {
			if p <= 0 {
				t.Errorf("trace %s event %d norm power %v <= 0", at.TraceID, i, p)
			}
		}
	}
}

func TestNormalizationCentersAroundOne(t *testing.T) {
	// In a normal trace most instances sit at their event's typical
	// power, so normalized power must hover near 1 (paper: "instances
	// that have relatively low normalized power (e.g., around 1...) are
	// invoked during normal usage").
	a, _ := NewAnalyzer(DefaultConfig())
	report, err := a.Analyze(corpus(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range report.Traces {
		for i, p := range at.NormPower {
			if p < 0.8 || p > 1.4 {
				t.Errorf("trace %s event %d (%s) norm power %v not near 1",
					at.TraceID, i, at.Events[i].Instance.Key, p)
			}
		}
	}
}

func TestDeviceScalingMakesTracesComparable(t *testing.T) {
	// Same behaviour on two different phones: after Step-1 scaling the
	// analysis must not flag either as an ABD.
	var specs []spec
	for i := 0; i < 8; i++ {
		specs = append(specs, spec{"LApp", "onClick", 2000, 0.3})
	}
	bundles := []*trace.TraceBundle{
		buildBundle("t1", "u1", "nexus6", specs),
		buildBundle("t2", "u2", "motog", specs),
		buildBundle("t3", "u3", "galaxys5", specs),
	}
	a, _ := NewAnalyzer(DefaultConfig())
	report, err := a.Analyze(bundles)
	if err != nil {
		t.Fatal(err)
	}
	if report.ImpactedTraces != 0 {
		t.Errorf("device heterogeneity produced %d false positives", report.ImpactedTraces)
	}
	// And the scaled raw powers of the same event should be within a
	// few percent across devices.
	p1 := report.Traces[0].Events[3].PowerMW
	p2 := report.Traces[1].Events[3].PowerMW
	if math.Abs(p1-p2)/p1 > 0.25 {
		t.Errorf("scaled powers diverge: %v vs %v", p1, p2)
	}
}

func TestUnknownDeviceFails(t *testing.T) {
	b := buildBundle("t", "u", "unknown-phone", []spec{{"L", "f", 1000, 0.5}})
	a, _ := NewAnalyzer(DefaultConfig())
	if _, err := a.Analyze([]*trace.TraceBundle{b}); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestEmptyDeviceDefaultsToReference(t *testing.T) {
	b := buildBundle("t", "u", "", []spec{
		{"L", "f", 2000, 0.5}, {"L", "f", 2000, 0.5}, {"L", "f", 2000, 0.5},
	})
	a, _ := NewAnalyzer(DefaultConfig())
	if _, err := a.Analyze([]*trace.TraceBundle{b}); err != nil {
		t.Errorf("empty device rejected: %v", err)
	}
}

func TestCodeReduction(t *testing.T) {
	pkg := &apk.Package{
		AppID: "test",
		Classes: []apk.Class{
			{Name: "LApp/Settings", Methods: []apk.Method{
				{Name: "onResume", SourceLines: 100},
			}},
			{Name: "LApp", Methods: []apk.Method{
				{Name: "onClick", SourceLines: 200},
				{Name: "checkMail", SourceLines: 300},
				{Name: "unrelated", SourceLines: 400},
			}},
		},
	}
	cfg := DefaultConfig()
	cfg.DeveloperImpactPercent = 25
	a, _ := NewAnalyzer(cfg)
	report, err := a.Analyze(corpus(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	cr, err := ComputeCodeReduction(report, pkg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cr.TotalLines != 1000 {
		t.Errorf("total = %d", cr.TotalLines)
	}
	// All reported events: trigger (100) + onClick (200) + checkMail
	// (300); the 400-line unrelated method is excluded, which is the
	// entire point of the metric.
	if cr.DiagnosisLines != 600 {
		t.Errorf("diagnosis lines = %d, want 600", cr.DiagnosisLines)
	}
	if math.Abs(cr.Reduction-0.4) > 1e-12 {
		t.Errorf("reduction = %v, want 0.4", cr.Reduction)
	}
	// Restricting to the single closest event must reduce further.
	cr1, err := ComputeCodeReduction(report, pkg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cr1.DiagnosisLines >= cr.DiagnosisLines {
		t.Errorf("top-1 lines %d not below all-events %d", cr1.DiagnosisLines, cr.DiagnosisLines)
	}
}

func TestCodeReductionErrors(t *testing.T) {
	r := &Report{AppID: "x"}
	if _, err := ComputeCodeReduction(r, nil, 0); err == nil {
		t.Error("nil package accepted")
	}
	if _, err := ComputeCodeReduction(r, &apk.Package{AppID: "x"}, 0); err == nil {
		t.Error("zero-line package accepted")
	}
}

func TestReportText(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeveloperImpactPercent = 25
	a, _ := NewAnalyzer(cfg)
	report, err := a.Analyze(corpus(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	text := report.String()
	if !strings.Contains(text, "Settings:onResume") {
		t.Errorf("report lacks trigger event:\n%s", text)
	}
	if !strings.Contains(text, "manifestation point") {
		t.Errorf("report lacks manifestation section:\n%s", text)
	}
}

func TestEstimationNoiseDoesNotBreakDetection(t *testing.T) {
	// With the paper's 2.5% model error the ABD must still be found and
	// normal traces must still be clean.
	cfg := DefaultConfig()
	cfg.EstimationNoiseFrac = 0.025
	cfg.NoiseSeed = 7
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := a.Analyze(corpus(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if report.ImpactedTraces < 2 {
		t.Errorf("noise lost the ABD: impacted = %d", report.ImpactedTraces)
	}
	if report.ImpactedTraces > 3 {
		t.Errorf("noise fabricated ABDs: impacted = %d of 8", report.ImpactedTraces)
	}
}

func TestStepOneExposed(t *testing.T) {
	a, _ := NewAnalyzer(DefaultConfig())
	b := buildBundle("t", "u", "nexus6", []spec{
		{"L", "f", 2000, 0.5}, {"L", "g", 2000, 0.3},
	})
	at, err := a.StepOne(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(at.Events) != 2 {
		t.Errorf("events = %d", len(at.Events))
	}
	if at.Events[0].PowerMW <= at.Events[1].PowerMW {
		t.Errorf("higher-utilization event not higher power: %v vs %v",
			at.Events[0].PowerMW, at.Events[1].PowerMW)
	}
}

func TestNormalizeFallbackOnZeroBase(t *testing.T) {
	a, _ := NewAnalyzer(DefaultConfig())
	key := trace.EventKey{Class: "L", Callback: "f"}
	at := &AnalyzedTrace{Events: []EventPower{
		{Instance: trace.Instance{Key: key}, PowerMW: 42},
	}}
	// A zero/negative base (degenerate input) falls back to raw power
	// instead of dividing by zero. The key interns to ID 0 on a fresh
	// analyzer, so base[0] is its slot.
	a.normalize(at, []float64{0})
	if at.NormPower[0] != 42 {
		t.Errorf("norm = %v, want raw fallback 42", at.NormPower[0])
	}
}

func TestDetectTinyTrace(t *testing.T) {
	a, _ := NewAnalyzer(DefaultConfig())
	at := &AnalyzedTrace{NormPower: []float64{1}}
	if err := a.detect(at); err != nil {
		t.Fatal(err)
	}
	if len(at.Manifestations) != 0 {
		t.Error("single-event trace produced manifestations")
	}
}

func TestParallelAnalysisIdenticalToSerial(t *testing.T) {
	bundles := corpus(6, 2)
	serialCfg := DefaultConfig()
	serialCfg.EstimationNoiseFrac = 0.025
	serialCfg.NoiseSeed = 3
	serial, err := NewAnalyzer(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := serialCfg
	parCfg.Parallelism = 4
	parallel, err := NewAnalyzer(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := serial.Analyze(bundles)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.Analyze(bundles)
	if err != nil {
		t.Fatal(err)
	}
	if rs.ImpactedTraces != rp.ImpactedTraces || len(rs.Impacted) != len(rp.Impacted) {
		t.Fatalf("parallel diverged: %d/%d vs %d/%d",
			rs.ImpactedTraces, len(rs.Impacted), rp.ImpactedTraces, len(rp.Impacted))
	}
	for i := range rs.Impacted {
		if rs.Impacted[i] != rp.Impacted[i] {
			t.Fatalf("impact %d differs: %+v vs %+v", i, rs.Impacted[i], rp.Impacted[i])
		}
	}
	for i := range rs.Traces {
		if len(rs.Traces[i].Events) != len(rp.Traces[i].Events) {
			t.Fatalf("trace %d event counts differ", i)
		}
		for j := range rs.Traces[i].Events {
			if rs.Traces[i].Events[j].PowerMW != rp.Traces[i].Events[j].PowerMW {
				t.Fatalf("trace %d event %d power differs", i, j)
			}
		}
	}
}

func TestParallelAnalysisPropagatesErrors(t *testing.T) {
	good := buildBundle("ok", "u", "nexus6", []spec{{"L", "f", 2000, 0.5}})
	bad := buildBundle("bad", "u", "no-such-device", []spec{{"L", "f", 2000, 0.5}})
	cfg := DefaultConfig()
	cfg.Parallelism = 3
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Analyze([]*trace.TraceBundle{good, bad, good}); err == nil {
		t.Error("parallel analysis swallowed a worker error")
	}
}

func TestShortEventGetsNearestSamplePower(t *testing.T) {
	// Events shorter than the 500 ms sampling period must still receive
	// a power estimate (nearest-sample fallback).
	b := buildBundle("t", "u", "nexus6", []spec{
		{"L", "quick", 100, 0.5},
		{"L", "quick", 100, 0.5},
		{"L", "long", 3000, 0.5},
	})
	a, _ := NewAnalyzer(DefaultConfig())
	report, err := a.Analyze([]*trace.TraceBundle{b})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Traces[0].Events) != 3 {
		t.Errorf("events = %d, want 3 (short events dropped?)", len(report.Traces[0].Events))
	}
}
