package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestSummarize: the snapshot summary is derived purely from the
// report — counts reconcile with the report's own fields, TopKeys
// follows Step-5 order and the topN bound, and byte-identical reports
// summarize identically.
func TestSummarize(t *testing.T) {
	bundles := bundlePool(t, 8, 71)
	cfg := core.DefaultConfig()
	analyzer, err := core.NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := analyzer.Analyze(bundles)
	if err != nil {
		t.Fatal(err)
	}

	sum := report.Summarize(3)
	if sum.TotalTraces != report.TotalTraces {
		t.Fatalf("TotalTraces %d != report %d", sum.TotalTraces, report.TotalTraces)
	}
	if sum.ImpactedTraces != report.ImpactedTraces {
		t.Fatalf("ImpactedTraces %d != report %d", sum.ImpactedTraces, report.ImpactedTraces)
	}
	manifestations := 0
	impacted := 0
	for _, at := range report.Traces {
		manifestations += len(at.Manifestations)
		if len(at.Manifestations) > 0 {
			impacted++
		}
	}
	if sum.Manifestations != manifestations {
		t.Fatalf("Manifestations %d, want %d", sum.Manifestations, manifestations)
	}
	if impacted == 0 || sum.ImpactedTraces != impacted {
		t.Fatalf("corpus must exercise impact: summary %d, recount %d", sum.ImpactedTraces, impacted)
	}
	if sum.Skipped != len(report.Skipped) {
		t.Fatalf("Skipped %d != report %d", sum.Skipped, len(report.Skipped))
	}

	wantKeys := report.TopKeys(3)
	if !reflect.DeepEqual(sum.TopKeys, wantKeys) {
		t.Fatalf("TopKeys %v, want %v", sum.TopKeys, wantKeys)
	}
	if len(sum.TopKeys) > 3 {
		t.Fatalf("TopKeys exceeded bound: %d", len(sum.TopKeys))
	}
	// topN <= 0 keeps every reported key.
	if all := report.Summarize(0); len(all.TopKeys) != len(report.TopKeys(0)) {
		t.Fatalf("Summarize(0) kept %d keys, want all %d", len(all.TopKeys), len(report.TopKeys(0)))
	}

	// Determinism: same report, same summary.
	if again := report.Summarize(3); !reflect.DeepEqual(again, sum) {
		t.Fatalf("summary not deterministic: %+v vs %+v", again, sum)
	}
}
