package core

import (
	"encoding/json"
	"fmt"
	"testing"
)

// TestStepCacheLRUEviction pins the eviction policy: the entry that
// falls out is always the least recently *used* (gets refresh
// recency), never merely the oldest inserted.
func TestStepCacheLRUEviction(t *testing.T) {
	c := newStepCache(2)
	res := func(id string) stepOneResult {
		return stepOneResult{at: &AnalyzedTrace{TraceID: id}}
	}
	c.put("a", res("a"))
	c.put("b", res("b"))
	if _, ok := c.get("a"); !ok { // refresh a: now b is LRU
		t.Fatal("a missing right after put")
	}
	c.put("c", res("c")) // must evict b, not a
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction; LRU order ignores get recency")
	}
	if r, ok := c.get("a"); !ok || r.at.TraceID != "a" {
		t.Fatal("recently used entry a was evicted")
	}
	if r, ok := c.get("c"); !ok || r.at.TraceID != "c" {
		t.Fatal("newest entry c missing")
	}
	st := c.stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("size/capacity = %d/%d, want 2/2", st.Size, st.Capacity)
	}
}

// TestStepCacheStatsReconcile pins the metric invariant
// hits + misses == lookups over a randomized-ish workload, and that
// size never exceeds capacity.
func TestStepCacheStatsReconcile(t *testing.T) {
	c := newStepCache(8)
	for i := 0; i < 200; i++ {
		// A few hot keys (hits) over a wide cold tail (misses +
		// evictions), so every counter moves.
		key := fmt.Sprintf("hot%d", i%3)
		if i%4 == 3 {
			key = fmt.Sprintf("cold%d", i)
		}
		if _, ok := c.get(key); !ok {
			c.put(key, stepOneResult{at: &AnalyzedTrace{TraceID: key}})
		}
		if st := c.stats(); st.Size > st.Capacity {
			t.Fatalf("iteration %d: size %d exceeds capacity %d", i, st.Size, st.Capacity)
		}
	}
	st := c.stats()
	if st.Hits+st.Misses != st.Lookups {
		t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, st.Lookups)
	}
	if st.Lookups != 200 {
		t.Fatalf("lookups = %d, want 200", st.Lookups)
	}
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("workload should mix hits and misses, got %+v", st)
	}
	if got := st.HitRate(); got != float64(st.Hits)/float64(st.Lookups) {
		t.Fatalf("hit rate %v inconsistent with counters", got)
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Fatal("zero-lookup hit rate must be 0")
	}
}

// TestStepCachePutExistingKey: re-putting a key updates in place (no
// growth, no eviction) and refreshes recency.
func TestStepCachePutExistingKey(t *testing.T) {
	c := newStepCache(2)
	c.put("a", stepOneResult{at: &AnalyzedTrace{TraceID: "a1"}})
	c.put("b", stepOneResult{at: &AnalyzedTrace{TraceID: "b"}})
	c.put("a", stepOneResult{at: &AnalyzedTrace{TraceID: "a2"}}) // update: a now MRU
	if st := c.stats(); st.Size != 2 || st.Evictions != 0 {
		t.Fatalf("update grew or evicted: %+v", st)
	}
	c.put("c", stepOneResult{at: &AnalyzedTrace{TraceID: "c"}}) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived; update did not refresh a's recency")
	}
	if r, ok := c.get("a"); !ok || r.at.TraceID != "a2" {
		t.Fatal("updated value for a not served")
	}
}

// TestStepCacheDefaultCapacity: non-positive capacities fall back to
// the default bound.
func TestStepCacheDefaultCapacity(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		if got := newStepCache(capacity).stats().Capacity; got != DefaultStepCacheCap {
			t.Fatalf("capacity %d -> %d, want %d", capacity, got, DefaultStepCacheCap)
		}
	}
}

// TestEvictionThenRecomputeEquivalence: with a cache smaller than the
// corpus, every Report thrashes the LRU — evicted entries must be
// recomputed to byte-identical Step-1 outputs, so repeated reports
// never drift.
func TestEvictionThenRecomputeEquivalence(t *testing.T) {
	corpus := multiDeviceCorpus(t, 79)
	cfg := DefaultConfig()
	inc, err := NewIncrementalAnalyzer(cfg, 4) // corpus has 12 bundles
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range corpus.Bundles {
		inc.Add(b)
	}
	var want []byte
	for round := 0; round < 3; round++ {
		report, err := inc.Report()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(report)
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			want = data
			continue
		}
		if string(data) != string(want) {
			t.Fatalf("round %d: report drifted under eviction-recompute churn", round)
		}
	}
	st := inc.CacheStats()
	if st.Evictions == 0 {
		t.Fatal("cache never evicted; test is not exercising recompute")
	}
	if st.Size > 4 {
		t.Fatalf("cache size %d exceeds capacity 4", st.Size)
	}
	if st.Hits+st.Misses != st.Lookups {
		t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, st.Lookups)
	}
}
