package core

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// skipBundle builds a minimal analyzable bundle.
func skipBundle(user, device string) *trace.TraceBundle {
	return &trace.TraceBundle{
		Event: trace.EventTrace{
			AppID: "app", UserID: user, Device: device, TraceID: "t-" + user,
			Records: []trace.Record{
				{TimestampMS: 0, Dir: trace.Enter, Key: trace.EventKey{Class: "La/B", Callback: "onCreate"}},
				{TimestampMS: 1000, Dir: trace.Exit, Key: trace.EventKey{Class: "La/B", Callback: "onCreate"}},
			},
		},
		Util: trace.UtilizationTrace{
			AppID: "app", PeriodMS: 500,
			Samples: []trace.UtilizationSample{
				{TimestampMS: 0}, {TimestampMS: 500}, {TimestampMS: 1000},
			},
		},
	}
}

func TestSkipInvalidTracesOff(t *testing.T) {
	cfg := DefaultConfig()
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bundles := []*trace.TraceBundle{
		skipBundle("u1", "nexus6"),
		skipBundle("u2", "no-such-device"),
	}
	if _, err := a.Analyze(bundles); err == nil {
		t.Fatal("analysis succeeded over a corpus with an unknown device; want the default loud failure")
	} else if !strings.Contains(err.Error(), "trace 1") {
		t.Errorf("error does not name the failing trace: %v", err)
	}
}

func TestSkipInvalidTracesDegradesGracefully(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipInvalidTraces = true
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bundles := []*trace.TraceBundle{
		skipBundle("u1", "nexus6"),
		skipBundle("u2", "no-such-device"),
		skipBundle("u3", "nexus6"),
	}
	report, err := a.Analyze(bundles)
	if err != nil {
		t.Fatalf("analysis failed despite SkipInvalidTraces: %v", err)
	}
	if report.TotalTraces != 2 || len(report.Traces) != 2 {
		t.Errorf("analyzed %d traces (TotalTraces=%d), want 2", len(report.Traces), report.TotalTraces)
	}
	if len(report.Skipped) != 1 {
		t.Fatalf("skipped = %+v, want exactly the invalid trace", report.Skipped)
	}
	sk := report.Skipped[0]
	if sk.Index != 1 || sk.TraceID != "t-u2" || sk.Reason == "" {
		t.Errorf("skipped entry = %+v, want index 1, trace t-u2 and a reason", sk)
	}
	// The surviving traces are the valid ones, in input order.
	if report.Traces[0].UserID != "u1" || report.Traces[1].UserID != "u3" {
		t.Errorf("surviving traces = %s, %s; want u1, u3",
			report.Traces[0].UserID, report.Traces[1].UserID)
	}
}

func TestSkipInvalidTracesAllInvalid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipInvalidTraces = true
	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bundles := []*trace.TraceBundle{
		skipBundle("u1", "no-such-device"),
		skipBundle("u2", "no-such-device"),
	}
	if _, err := a.Analyze(bundles); err == nil {
		t.Fatal("analysis succeeded with every trace invalid; want an error naming the cause")
	}
}
