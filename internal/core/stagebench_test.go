package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// TestStageBenchMatchesPipeline checks that the primed harness holds
// exactly the state the full pipeline produces, and that re-running
// each stage (as a benchmark loop does) leaves it unchanged.
func TestStageBenchMatchesPipeline(t *testing.T) {
	bundles := corpus(6, 2)
	cfg := DefaultConfig()

	a, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Analyze(bundles)
	if err != nil {
		t.Fatal(err)
	}

	sb, err := NewStageBench(cfg, bundles)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := sb.StepOne(); err != nil {
			t.Fatalf("round %d: StepOne: %v", round, err)
		}
		if err := sb.RankAndBase(); err != nil {
			t.Fatalf("round %d: RankAndBase: %v", round, err)
		}
		sb.Normalize()
		if err := sb.Detect(); err != nil {
			t.Fatalf("round %d: Detect: %v", round, err)
		}
	}

	if sb.Traces() != len(want.Traces) {
		t.Fatalf("harness holds %d traces, pipeline produced %d", sb.Traces(), len(want.Traces))
	}
	for i, got := range sb.traces {
		w := want.Traces[i]
		if !reflect.DeepEqual(got.Events, w.Events) {
			t.Errorf("trace %s: events diverged", w.TraceID)
		}
		if !reflect.DeepEqual(got.Rank, w.Rank) {
			t.Errorf("trace %s: ranks diverged: %v vs %v", w.TraceID, got.Rank, w.Rank)
		}
		if !reflect.DeepEqual(got.NormPower, w.NormPower) {
			t.Errorf("trace %s: normalized power diverged", w.TraceID)
		}
		if !reflect.DeepEqual(got.Amplitude, w.Amplitude) {
			t.Errorf("trace %s: amplitudes diverged", w.TraceID)
		}
		if got.Fence != w.Fence {
			t.Errorf("trace %s: fence %v, pipeline %v", w.TraceID, got.Fence, w.Fence)
		}
		if !reflect.DeepEqual(got.Manifestations, w.Manifestations) && !(len(got.Manifestations) == 0 && len(w.Manifestations) == 0) {
			t.Errorf("trace %s: manifestations diverged: %v vs %v", w.TraceID, got.Manifestations, w.Manifestations)
		}
		if !reflect.DeepEqual(got.WindowKeys, w.WindowKeys) && !(len(got.WindowKeys) == 0 && len(w.WindowKeys) == 0) {
			t.Errorf("trace %s: window keys diverged: %v vs %v", w.TraceID, got.WindowKeys, w.WindowKeys)
		}
	}
}

func TestStageBenchErrors(t *testing.T) {
	if _, err := NewStageBench(Config{}, corpus(1, 0)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewStageBench(DefaultConfig(), nil); !errors.Is(err, ErrNoTraces) {
		t.Errorf("empty corpus: err = %v, want ErrNoTraces", err)
	}
	bad := &trace.TraceBundle{
		Event: trace.EventTrace{TraceID: "bad"},
		Util:  trace.UtilizationTrace{PeriodMS: 0},
	}
	if _, err := NewStageBench(DefaultConfig(), []*trace.TraceBundle{bad}); err == nil {
		t.Error("invalid bundle accepted")
	}
}
