package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/workload"
)

// multiDeviceCorpus simulates a realistic heterogeneous-fleet corpus
// (the workload default cycles users across six device profiles).
func multiDeviceCorpus(t *testing.T, seed int64) *workload.Result {
	t.Helper()
	app, err := apps.K9Mail()
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(app, seed)
	cfg.Users = 12
	cfg.ImpactedFraction = 0.25
	corpus, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

// TestAnalyzeByteIdenticalAcrossWorkerCounts is the determinism
// contract of the parallel pipeline: the same corpus and seed must
// produce reflect.DeepEqual reports — and byte-identical JSON — for
// workers = 1, 2, 8, with and without estimation noise.
func TestAnalyzeByteIdenticalAcrossWorkerCounts(t *testing.T) {
	corpus := multiDeviceCorpus(t, 99)
	variants := []struct {
		name  string
		noise float64
	}{
		{"no-noise", 0},
		{"paper-noise", power.PaperNoiseFrac},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			var baseReport *Report
			var baseJSON []byte
			for _, workers := range []int{1, 2, 8} {
				cfg := DefaultConfig()
				cfg.DeveloperImpactPercent = corpus.ImpactedPercent
				cfg.Parallelism = workers
				cfg.EstimationNoiseFrac = v.noise
				cfg.NoiseSeed = 7
				analyzer, err := NewAnalyzer(cfg)
				if err != nil {
					t.Fatal(err)
				}
				report, err := analyzer.Analyze(corpus.Bundles)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				blob, err := json.Marshal(report)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if baseReport == nil {
					baseReport, baseJSON = report, blob
					if report.ImpactedTraces == 0 {
						t.Fatal("corpus produced no impacted traces; test would be vacuous")
					}
					continue
				}
				// The contract is the JSON encoding, byte for byte: it
				// covers every analytic field. Stages (wall/CPU timings)
				// and the traces' unexported interner-ID columns
				// (keyIDs/windowIDs) legitimately differ run to run —
				// dense IDs are assigned in first-come order under the
				// parallel Step-1 fan-out and are derivable state, never
				// observable output — so a struct-level DeepEqual would
				// flake on scheduling, not on real divergence.
				if !bytes.Equal(baseJSON, blob) {
					t.Errorf("workers=%d: JSON encoding differs from workers=1", workers)
				}
			}
		})
	}
}

// TestAutoParallelismMatchesSerial pins the Parallelism=0 (GOMAXPROCS)
// default to the serial result as well.
func TestAutoParallelismMatchesSerial(t *testing.T) {
	corpus := multiDeviceCorpus(t, 41)
	var blobs [][]byte
	for _, workers := range []int{1, 0} {
		cfg := DefaultConfig()
		cfg.DeveloperImpactPercent = corpus.ImpactedPercent
		cfg.Parallelism = workers
		analyzer, err := NewAnalyzer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		report, err := analyzer.Analyze(corpus.Bundles)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(report)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Error("Parallelism=0 (auto) diverged from serial analysis")
	}
}

// TestReanalyzeDoesNotAliasManifestations is the regression test for
// the detect() slice-reuse fix: re-running detection on an already
// analyzed trace must not clobber a previously returned Manifestations
// slice through a shared backing array.
func TestReanalyzeDoesNotAliasManifestations(t *testing.T) {
	a, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	at := &AnalyzedTrace{NormPower: []float64{1, 1, 1, 1, 1, 1, 1, 1, 20, 1}}
	if err := a.detect(at); err != nil {
		t.Fatal(err)
	}
	first := at.Manifestations
	if len(first) == 0 {
		t.Fatal("expected a manifestation on the spike trace")
	}
	firstCopy := append([]int(nil), first...)

	// Re-analyze with the spike moved: the old in-place truncation
	// would rewrite first's backing array.
	at.NormPower = []float64{1, 20, 1, 1, 1, 1, 1, 1, 1, 1}
	if err := a.detect(at); err != nil {
		t.Fatal(err)
	}
	if len(at.Manifestations) == 0 {
		t.Fatal("expected a manifestation after re-analysis")
	}
	if !reflect.DeepEqual(first, firstCopy) {
		t.Errorf("previously returned Manifestations changed after re-analysis: %v -> %v", firstCopy, first)
	}
	if &first[0] == &at.Manifestations[0] {
		t.Error("re-analysis reused the old Manifestations backing array")
	}
}
