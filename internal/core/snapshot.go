package core

import "repro/internal/trace"

// ReportSummary is the compact snapshot metadata of one diagnosis
// report: the handful of numbers an operator watches to see a diagnosis
// drift as bundles arrive, cheap enough to keep a history ring of and to
// push over an event stream for every re-analysis. It is derived purely
// from the report, so two byte-identical reports always summarize
// identically.
type ReportSummary struct {
	// TotalTraces is the number of analyzed traces in the corpus.
	TotalTraces int `json:"totalTraces"`
	// ImpactedTraces is the number of traces with at least one detected
	// manifestation point.
	ImpactedTraces int `json:"impactedTraces"`
	// Manifestations is the total count of detected manifestation
	// points across all traces.
	Manifestations int `json:"manifestations"`
	// Skipped is the number of traces excluded under SkipInvalidTraces.
	Skipped int `json:"skipped,omitempty"`
	// TopKeys are the first reported event keys in Step-5 order (the
	// culprit candidates an engineer reads first).
	TopKeys []trace.EventKey `json:"topKeys,omitempty"`
}

// Summarize extracts the report's snapshot metadata, keeping the first
// topN reported event keys (all when topN <= 0 or beyond the list).
func (r *Report) Summarize(topN int) ReportSummary {
	manifestations := 0
	for _, at := range r.Traces {
		manifestations += len(at.Manifestations)
	}
	return ReportSummary{
		TotalTraces:    r.TotalTraces,
		ImpactedTraces: r.ImpactedTraces,
		Manifestations: manifestations,
		Skipped:        len(r.Skipped),
		TopKeys:        r.TopKeys(topN),
	}
}
