package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/trace"
)

// Example runs the 5-step analysis on a tiny hand-built corpus: three
// traces behave normally, the fourth transitions to sustained high power
// after a settings event.
func Example() {
	normal := func(id, user string) *trace.TraceBundle {
		return buildBundle(id, user, []occurrence{
			{"LApp/Main", "onResume", 0.2}, {"LApp/Main", "onClick", 0.2},
			{"LApp/Main", "onClick", 0.2}, {"LApp/Main", "onPause", 0.2},
			{"LApp/Main", "onResume", 0.2}, {"LApp/Main", "onClick", 0.2},
			{"LApp/Main", "onClick", 0.2}, {"LApp/Main", "onPause", 0.2},
		})
	}
	impacted := buildBundle("t4", "user-d", []occurrence{
		{"LApp/Main", "onResume", 0.2}, {"LApp/Main", "onClick", 0.2},
		{"LApp/Settings", "onResume", 0.2}, // the trigger
		{"LApp/Main", "onClick", 0.9},      // drain active from here on
		{"LApp/Main", "onPause", 0.9},
		{"LApp/Main", "onResume", 0.9}, {"LApp/Main", "onClick", 0.9},
		{"LApp/Main", "onPause", 0.9},
	})

	analyzer, err := core.NewAnalyzer(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	report, err := analyzer.Analyze([]*trace.TraceBundle{
		normal("t1", "user-a"), normal("t2", "user-b"), normal("t3", "user-c"), impacted,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traces with manifestation points: %d of %d\n",
		report.ImpactedTraces, report.TotalTraces)
	for _, im := range report.Impacted {
		if im.Key.Class == "LApp/Settings" {
			fmt.Printf("trigger reported: %s (%.0f%% of traces)\n",
				trace.ShortKey(im.Key), im.Percent)
		}
	}
	// Output:
	// traces with manifestation points: 1 of 4
	// trigger reported: Settings:onResume (25% of traces)
}

// occurrence is one 2-second event with a CPU level.
type occurrence struct {
	cls, cb  string
	cpuLevel float64
}

// buildBundle lays occurrences back to back with 500 ms utilization
// samples following whichever event is active.
func buildBundle(id, user string, occs []occurrence) *trace.TraceBundle {
	const durMS = 2000
	b := &trace.TraceBundle{
		Event: trace.EventTrace{AppID: "exampleapp", UserID: user, TraceID: id},
		Util:  trace.UtilizationTrace{AppID: "exampleapp", PeriodMS: 500},
	}
	t := int64(0)
	levels := make([]float64, 0, len(occs))
	for _, o := range occs {
		key := trace.EventKey{Class: o.cls, Callback: o.cb}
		b.Event.Records = append(b.Event.Records,
			trace.Record{TimestampMS: t, Dir: trace.Enter, Key: key},
			trace.Record{TimestampMS: t + durMS, Dir: trace.Exit, Key: key},
		)
		levels = append(levels, o.cpuLevel)
		t += durMS
	}
	for ts := int64(0); ts <= t; ts += 500 {
		var u trace.UtilizationVector
		idx := int(ts / durMS)
		if idx < len(levels) {
			u.Set(trace.CPU, levels[idx])
		}
		b.Util.Samples = append(b.Util.Samples, trace.UtilizationSample{TimestampMS: ts, Util: u})
	}
	return b
}
