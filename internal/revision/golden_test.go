package revision

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps"
)

// update regenerates the golden revision reports instead of comparing:
//
//	go test ./internal/revision -run TestGoldenRevisionReport -update
//
// Regenerate only for intentional report-format or algorithm changes,
// and review the golden diff like code.
var update = flag.Bool("update", false, "rewrite the golden revision reports under testdata")

// goldenDiff builds the pinned revision diff: the k9mail hold-
// regression hop of a fixed chain.
func goldenDiff(t *testing.T) *Diff {
	t.Helper()
	app, err := apps.ByAppID("k9mail")
	if err != nil {
		t.Fatal(err)
	}
	ccfg := ChainConfig{App: app, Versions: 3, Seed: 3, EditsPerVersion: 2, RegressionAt: 2, Kind: KindHold}
	chain, err := GenerateChain(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunChain(chain, ccfg, CorpusConfig{Users: 6, Seed: 5, BrowsePhases: 4}, AnalyzeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Diffs[chain.RegressionAt-1]
}

// TestGoldenRevisionReport locks both renderings of the revision diff
// — the -diff text report and the JSON document — byte-for-byte.
func TestGoldenRevisionReport(t *testing.T) {
	d := goldenDiff(t)

	var text bytes.Buffer
	if err := d.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	jsonBytes, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	jsonBytes = append(jsonBytes, '\n')

	for _, tc := range []struct {
		file string
		got  []byte
	}{
		{"diff_hold.txt", text.Bytes()},
		{"diff_hold.json", jsonBytes},
	} {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, tc.got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(tc.got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to record): %v", err)
			}
			if !bytes.Equal(tc.got, want) {
				t.Fatalf("rendering differs from %s (%d vs %d bytes); run with -update if intentional:\n%s",
					path, len(tc.got), len(want), tc.got)
			}
		})
	}
}
