package revision

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/trace"
)

func testApp(t *testing.T, appID string) *apps.App {
	t.Helper()
	app, err := apps.ByAppID(appID)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func corpusOf(t *testing.T, v *Version) []*trace.TraceBundle {
	t.Helper()
	bundles, err := VersionCorpus(v, CorpusConfig{Users: 6, Seed: 5, BrowsePhases: 4})
	if err != nil {
		t.Fatal(err)
	}
	return bundles
}

func batchReport(t *testing.T, bundles []*trace.TraceBundle) *core.Report {
	t.Helper()
	a, err := core.NewAnalyzer(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Analyze(bundles)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestNoOpRevisionEmptyDiff: a revision with no edits, and one with
// static-only edits (helper rewrites, logging calls), changes no
// behavior — its corpus is byte-identical to the parent's and the diff
// is empty.
func TestNoOpRevisionEmptyDiff(t *testing.T) {
	app := testApp(t, "k9mail")
	base := &Version{Index: 0, App: app}

	statics := staticKeys(app.Package(), app.Behaviors(false))
	if len(statics) == 0 {
		t.Fatal("k9mail has no static helper methods")
	}
	widgets := browseWidgetKeys(app)
	cases := []struct {
		name  string
		edits []Edit
	}{
		{"no-edits", nil},
		{"static-only", []Edit{
			{Op: OpHelperEdit, Target: statics[0]},
			{Op: OpAPIAdd, Target: widgets[0], Call: "Landroid/util/Log;->d"},
		}},
	}
	baseRep := batchReport(t, corpusOf(t, base))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ver, err := Derive(app, 1, tc.edits)
			if err != nil {
				t.Fatal(err)
			}
			d := Compare(baseRep, batchReport(t, corpusOf(t, ver)))
			if !d.Empty() {
				t.Fatalf("diff of a no-op revision is not empty:\nmean %+.3f mW, energy %+.3f mJ, %d new keys, %d gone keys",
					d.MeanDeltaMW, d.EnergyDeltaMJ, len(d.NewKeys), len(d.GoneKeys))
			}
			if len(d.Suspects) != 0 {
				t.Fatalf("no-op revision produced %d suspects", len(d.Suspects))
			}
		})
	}
}

// TestRevertNegatesDiff: comparing vN back to v0 yields exactly the
// negation of the forward diff — byte-for-byte after JSON encoding,
// including the -0.0 guards and mirrored onset evidence.
func TestRevertNegatesDiff(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			app := testApp(t, "sensorium")
			ccfg := ChainConfig{App: app, Versions: 3, Seed: 9, RegressionAt: 1, Kind: kind}
			chain, err := GenerateChain(ccfg)
			if err != nil {
				t.Fatal(err)
			}
			r0 := batchReport(t, corpusOf(t, chain.Versions[0]))
			rN := batchReport(t, corpusOf(t, chain.Versions[len(chain.Versions)-1]))
			forward := Compare(r0, rN)
			if forward.Empty() {
				t.Fatal("regression chain produced an empty forward diff")
			}
			reverse := Compare(rN, r0)
			negated := forward.Negation()
			revJSON, negJSON := mustJSON(t, reverse), mustJSON(t, negated)
			if !bytes.Equal(revJSON, negJSON) {
				t.Fatalf("reverse diff is not the exact negation of the forward diff:\nreverse: %s\nnegated: %s", revJSON, negJSON)
			}
			// Double negation is the identity.
			if back := mustJSON(t, negated.Negation()); !bytes.Equal(back, mustJSON(t, forward)) {
				t.Fatal("double negation does not round-trip to the forward diff")
			}
		})
	}
}

// TestReorderUnrelatedEdits: two behavioral edits on distinct callbacks
// commute — applying them in either order across versions yields
// byte-identical final corpora and reports.
func TestReorderUnrelatedEdits(t *testing.T) {
	app := testApp(t, "opencamera")
	widgets := browseWidgetKeys(app)
	if len(widgets) < 2 {
		t.Fatal("need two widgets")
	}
	editA := Edit{Op: OpMethodTweak, Target: widgets[0], Factor: 1.04}
	editB := Edit{Op: OpMethodTweak, Target: widgets[1], Factor: 0.97}

	finalOf := func(first, second Edit) *Version {
		v1, err := Derive(app, 1, []Edit{first})
		if err != nil {
			t.Fatal(err)
		}
		v2, err := Derive(v1.App, 2, []Edit{second})
		if err != nil {
			t.Fatal(err)
		}
		return v2
	}
	ab := finalOf(editA, editB)
	ba := finalOf(editB, editA)

	abBundles, baBundles := corpusOf(t, ab), corpusOf(t, ba)
	if len(abBundles) != len(baBundles) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(abBundles), len(baBundles))
	}
	for i := range abBundles {
		if trace.ContentKey(abBundles[i]) != trace.ContentKey(baBundles[i]) {
			t.Fatalf("bundle %d differs between edit orders", i)
		}
	}
	abJSON := mustJSON(t, batchReport(t, abBundles))
	baJSON := mustJSON(t, batchReport(t, baBundles))
	if !bytes.Equal(abJSON, baJSON) {
		t.Fatal("final reports differ between edit orders")
	}
}

// TestDuplicateVersionIdempotent: feeding the same version twice is a
// no-op — zero add/remove delta, byte-identical report, empty diff.
func TestDuplicateVersionIdempotent(t *testing.T) {
	app := testApp(t, "k9mail")
	ccfg := ChainConfig{App: app, Versions: 3, Seed: 4, RegressionAt: 2, Kind: KindLoop}
	chain, err := GenerateChain(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	corpora, err := ChainCorpora(chain, ccfg, CorpusConfig{Users: 6, Seed: 5, BrowsePhases: 4})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewAnalyzer(AnalyzeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var prev *VersionResult
	for i, bundles := range corpora {
		vr, err := inc.AnalyzeVersion(i, bundles)
		if err != nil {
			t.Fatal(err)
		}
		dup, err := inc.AnalyzeVersion(i, bundles)
		if err != nil {
			t.Fatal(err)
		}
		if dup.Delta.Added != 0 || dup.Delta.Removed != 0 {
			t.Fatalf("version %d replay has nonzero delta %+v", i, dup.Delta)
		}
		if !bytes.Equal(mustJSON(t, vr.Report), mustJSON(t, dup.Report)) {
			t.Fatalf("version %d replay changed the report", i)
		}
		if d := Compare(vr.Report, dup.Report); !d.Empty() {
			t.Fatalf("version %d self-diff is not empty", i)
		}
		// Benign hops may be static-only (byte-identical corpora), but
		// the regression hop must actually change the report.
		if i == chain.RegressionAt && bytes.Equal(mustJSON(t, prev.Report), mustJSON(t, vr.Report)) {
			t.Fatalf("regression version %d report is identical to its parent's", i)
		}
		prev = vr
	}
}
