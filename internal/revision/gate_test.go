package revision

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func ruleNames(res GateResult) []string {
	var out []string
	for _, v := range res.Violations {
		out = append(out, v.Rule)
	}
	return out
}

func hasRule(res GateResult, rule string) bool {
	for _, v := range res.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// TestGateRules triggers each threshold in isolation on synthetic
// diffs.
func TestGateRules(t *testing.T) {
	g := DefaultGate()
	key := trace.EventKey{Class: "Lcom/app/Main", Callback: "onClick"}
	cases := []struct {
		name string
		diff Diff
		rule string
	}{
		{
			"mean-power",
			Diff{MeanDeltaPct: g.MaxMeanDeltaPct + 1},
			"mean-power-delta-pct",
		},
		{
			"energy",
			Diff{EnergyDeltaPct: g.MaxEnergyDeltaPct + 1},
			"energy-delta-pct",
		},
		{
			"key-power",
			Diff{Deltas: []KeyDelta{{Key: key, BaseCount: 2, CandCount: 2, DeltaPct: g.MaxKeyDeltaPct + 1}}},
			"key-power-delta-pct",
		},
		{
			"onset-drain",
			Diff{Deltas: []KeyDelta{{Key: key, OnsetTraces: 2, OnsetDeltaMW: 2 * (g.MaxOnsetPerTraceMW + 1)}}},
			"onset-drain-mw-per-trace",
		},
		{
			"newly-manifesting",
			Diff{NewKeys: []trace.EventKey{key}},
			"newly-manifesting-keys",
		},
		{
			"impacted-rise",
			Diff{BaseTraces: 10, CandTraces: 10, BaseImpactedTraces: 0, CandImpactedTraces: 3},
			"impacted-traces-rise-pct",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := g.Evaluate(&tc.diff)
			if res.Pass {
				t.Fatalf("gate passed a diff violating %s", tc.rule)
			}
			if !hasRule(res, tc.rule) || len(res.Violations) != 1 {
				t.Fatalf("want exactly [%s], got %v", tc.rule, ruleNames(res))
			}
		})
	}
}

// TestGateGuards pins the noise guards: sparse keys are exempt from the
// per-key rule, under-paired keys from the onset rule, and falls never
// trip anything.
func TestGateGuards(t *testing.T) {
	g := DefaultGate()
	key := trace.EventKey{Class: "Lcom/app/Main", Callback: "onClick"}
	pass := []struct {
		name string
		diff Diff
	}{
		{"empty", Diff{}},
		{"sparse-key", Diff{Deltas: []KeyDelta{{Key: key, BaseCount: 1, CandCount: 1, DeltaPct: 500}}}},
		{"single-onset-trace", Diff{Deltas: []KeyDelta{{Key: key, OnsetTraces: 1, OnsetDeltaMW: 10000}}}},
		{"improvement", Diff{
			MeanDeltaPct:   -50,
			EnergyDeltaPct: -50,
			Deltas:         []KeyDelta{{Key: key, BaseCount: 5, CandCount: 5, DeltaPct: -90, OnsetTraces: 5, OnsetDeltaMW: -4000}},
			GoneKeys:       []trace.EventKey{key},
		}},
		{"impacted-fall", Diff{BaseTraces: 10, CandTraces: 10, BaseImpactedTraces: 5, CandImpactedTraces: 0}},
	}
	for _, tc := range pass {
		t.Run(tc.name, func(t *testing.T) {
			if res := g.Evaluate(&tc.diff); !res.Pass {
				t.Fatalf("gate tripped on %s: %v", tc.name, ruleNames(res))
			}
		})
	}
}

// TestLoadGate: absent fields keep defaults, present fields override,
// and unreadable or malformed files fail loudly.
func TestLoadGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gate.json")
	if err := os.WriteFile(path, []byte(`{"maxKeyDeltaPct": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGate(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxKeyDeltaPct != 99 {
		t.Fatalf("override not applied: %+v", g)
	}
	def := DefaultGate()
	if g.MaxMeanDeltaPct != def.MaxMeanDeltaPct || g.MinInstances != def.MinInstances {
		t.Fatalf("defaults not preserved: %+v", g)
	}
	if _, err := LoadGate(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file did not error")
	}
	if err := os.WriteFile(path, []byte(`{bad json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGate(path); err == nil {
		t.Fatal("malformed file did not error")
	}
}

// TestGateWriteText covers both verdict renderings.
func TestGateWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := (GateResult{Pass: true}).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Fatalf("pass rendering: %q", buf.String())
	}
	buf.Reset()
	key := trace.EventKey{Class: "Lcom/app/Main", Callback: "onClick"}
	res := GateResult{Violations: []Violation{
		{Rule: "energy-delta-pct", Value: 42, Limit: 10},
		{Rule: "key-power-delta-pct", Key: &key, Value: 80, Limit: 60},
	}}
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FAIL", "2 violations", "energy-delta-pct", "onClick"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fail rendering missing %q:\n%s", want, out)
		}
	}
}
