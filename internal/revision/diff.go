package revision

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/trace"
)

// KeyDelta is the per-event-key comparison between two reports.
type KeyDelta struct {
	Key trace.EventKey `json:"key"`
	// Mean device-scaled power of the key's instances in each report.
	BaseMeanMW float64 `json:"baseMeanMilliwatts"`
	CandMeanMW float64 `json:"candMeanMilliwatts"`
	DeltaMW    float64 `json:"deltaMilliwatts"`
	// DeltaPct is DeltaMW relative to the symmetric mean of the two
	// powers, so negating a diff negates it exactly (a revert's diff is
	// the forward diff mirrored). 0 when both means are 0.
	DeltaPct float64 `json:"deltaPercent"`
	// Instance counts in each report.
	BaseCount int `json:"baseInstances"`
	CandCount int `json:"candInstances"`
	// Step-5 impacted-trace percentages (0 when the key is not in the
	// report's impact table).
	BaseImpactPct  float64 `json:"baseImpactPercent"`
	CandImpactPct  float64 `json:"candImpactPercent"`
	ImpactDeltaPct float64 `json:"impactDeltaPercent"`
	// NewlyManifesting / Disappeared mark manifestation-window
	// membership appearing or vanishing between the versions.
	NewlyManifesting bool `json:"newlyManifesting,omitempty"`
	Disappeared      bool `json:"disappeared,omitempty"`
	// OnsetTraces counts paired traces — same pseudonymous user and
	// device in both versions — whose first behavioral divergence lands
	// on an instance of this key; OnsetDeltaMW sums those traces'
	// mean-power shift from the divergence point onward. This is causal
	// evidence: sessions replay deterministically, so everything before
	// the first edited-callback invocation is bit-identical, and the key
	// where the replays fork is the edited callback itself — even when
	// the drain it starts surfaces later, at background transitions far
	// from the culprit's own instances.
	OnsetTraces  int     `json:"onsetTraces,omitempty"`
	OnsetDeltaMW float64 `json:"onsetDeltaMilliwatts,omitempty"`
	// Score is the correlational culprit score: the impact delta
	// (percentage points of the fleet newly coinciding with a
	// manifestation window) plus the symmetric power delta percentage.
	// Suspect ranking prefers onset evidence and falls back to Score
	// for diffs without paired traces (e.g. unrelated snapshots).
	Score float64 `json:"score"`
}

// causal reports whether the key has positive onset evidence.
func (kd KeyDelta) causal() bool {
	return kd.OnsetTraces > 0 && kd.OnsetDeltaMW > 0
}

// Diff is the revision report: what changed, energy-wise, between a
// baseline and a candidate version of one app.
type Diff struct {
	AppID string `json:"appId"`

	BaseTraces         int `json:"baseTraces"`
	CandTraces         int `json:"candTraces"`
	BaseImpactedTraces int `json:"baseImpactedTraces"`
	CandImpactedTraces int `json:"candImpactedTraces"`

	// Corpus-wide mean event power in each version.
	BaseMeanMW  float64 `json:"baseMeanMilliwatts"`
	CandMeanMW  float64 `json:"candMeanMilliwatts"`
	MeanDeltaMW float64 `json:"meanDeltaMilliwatts"`
	// MeanDeltaPct is symmetric like KeyDelta.DeltaPct.
	MeanDeltaPct float64 `json:"meanDeltaPercent"`

	// Corpus-wide event energy (power × event duration, millijoules).
	// Mean power dilutes a drain across event counts and saturates at
	// the device's power ceiling; energy does neither, and work that
	// merely moves between callbacks (a rewire) conserves it — so the
	// energy delta isolates uncompensated cost the candidate added.
	BaseEnergyMJ   float64 `json:"baseEnergyMillijoules"`
	CandEnergyMJ   float64 `json:"candEnergyMillijoules"`
	EnergyDeltaMJ  float64 `json:"energyDeltaMillijoules"`
	EnergyDeltaPct float64 `json:"energyDeltaPercent"`

	// NewKeys / GoneKeys are the newly-manifesting and disappeared
	// event keys (impact-table membership), sorted.
	NewKeys  []trace.EventKey `json:"newlyManifesting"`
	GoneKeys []trace.EventKey `json:"disappeared"`

	// Deltas holds every key seen in either version, sorted by key.
	Deltas []KeyDelta `json:"deltas"`
	// Suspects are the culprit-ranked regression candidates: keys whose
	// impact or power moved up materially, best suspect first.
	Suspects []KeyDelta `json:"suspects"`
}

// suspectMinInstances keeps keys with almost no instances (whose means
// are noise) out of the suspect ranking.
const suspectMinInstances = 3

// suspectMinScore is the score floor below which a key is not reported
// as a suspect (small drifts from session-timing shifts).
const suspectMinScore = 10

// keyStats accumulates one report side of a key's delta.
type keyStats struct {
	sumMW     float64
	count     int
	impactPct float64
}

// collect walks a report's traces and impact table into per-key stats,
// the corpus mean event power, and the corpus event energy (mJ).
func collect(r *core.Report) (map[trace.EventKey]*keyStats, float64, float64) {
	stats := make(map[trace.EventKey]*keyStats)
	total, n := 0.0, 0
	energyMJ := 0.0
	for _, at := range r.Traces {
		for _, ev := range at.Events {
			ks := stats[ev.Instance.Key]
			if ks == nil {
				ks = &keyStats{}
				stats[ev.Instance.Key] = ks
			}
			ks.sumMW += ev.PowerMW
			ks.count++
			total += ev.PowerMW
			n++
			energyMJ += ev.PowerMW * float64(ev.Instance.EndMS-ev.Instance.StartMS) / 1000
		}
	}
	for _, imp := range r.Impacted {
		ks := stats[imp.Key]
		if ks == nil {
			ks = &keyStats{}
			stats[imp.Key] = ks
		}
		ks.impactPct = imp.Percent
	}
	mean := 0.0
	if n > 0 {
		mean = total / float64(n)
	}
	return stats, mean, energyMJ
}

// onsetAcc accumulates onset evidence for one key.
type onsetAcc struct {
	traces  int
	deltaMW float64
}

// onsets pairs the two reports' traces by (pseudonymous user, device)
// and attributes each changed pair's divergence to the key where the
// replays fork. Users are scrubbed with a deterministic pseudonym and
// sessions are seeded per user, so the pairing is stable across
// versions and shared prefixes are bit-identical.
func onsets(base, cand *core.Report) map[trace.EventKey]onsetAcc {
	byPair := make(map[string]*core.AnalyzedTrace, len(base.Traces))
	for _, at := range base.Traces {
		byPair[at.UserID+"\x00"+at.Device] = at
	}
	out := make(map[trace.EventKey]onsetAcc)
	for _, ct := range cand.Traces {
		bt := byPair[ct.UserID+"\x00"+ct.Device]
		if bt == nil {
			continue
		}
		key, delta, ok := onsetOf(bt, ct)
		if !ok {
			continue
		}
		acc := out[key]
		acc.traces++
		acc.deltaMW += delta
		out[key] = acc
	}
	return out
}

// onsetOf finds the first event where the paired runs diverge and
// returns the key at the fork plus the candidate-minus-baseline shift
// in mean power over the remainder of the trace. Pairs that are
// identical, or that fork structurally (different keys at the fork, so
// no single callback to credit), report ok=false. The computation is
// symmetric: swapping the arguments negates delta and keeps the key.
func onsetOf(bt, ct *core.AnalyzedTrace) (trace.EventKey, float64, bool) {
	n := len(bt.Events)
	if len(ct.Events) < n {
		n = len(ct.Events)
	}
	idx := -1
	for i := 0; i < n; i++ {
		if bt.Events[i].Instance.Key != ct.Events[i].Instance.Key ||
			bt.Events[i].PowerMW != ct.Events[i].PowerMW {
			idx = i
			break
		}
	}
	if idx < 0 || bt.Events[idx].Instance.Key != ct.Events[idx].Instance.Key {
		return trace.EventKey{}, 0, false
	}
	return bt.Events[idx].Instance.Key, suffixMean(ct.Events[idx:]) - suffixMean(bt.Events[idx:]), true
}

func suffixMean(evs []core.EventPower) float64 {
	if len(evs) == 0 {
		return 0
	}
	sum := 0.0
	for i := range evs {
		sum += evs[i].PowerMW
	}
	return sum / float64(len(evs))
}

// symmetricPct returns 100*(cand-base)/mean(base,cand): a relative
// delta that negates exactly when the operands swap.
func symmetricPct(base, cand float64) float64 {
	mid := (base + cand) / 2
	if mid == 0 {
		return 0
	}
	return 100 * (cand - base) / mid
}

// Compare diffs two reports of the same app. Baseline and candidate
// must come from the same analysis configuration for the comparison to
// be meaningful; the function itself only needs the reports.
func Compare(base, cand *core.Report) *Diff {
	d := &Diff{
		AppID:              cand.AppID,
		BaseTraces:         base.TotalTraces,
		CandTraces:         cand.TotalTraces,
		BaseImpactedTraces: base.ImpactedTraces,
		CandImpactedTraces: cand.ImpactedTraces,
	}
	if d.AppID == "" {
		d.AppID = base.AppID
	}
	bs, bMean, bEnergy := collect(base)
	cs, cMean, cEnergy := collect(cand)
	on := onsets(base, cand)
	d.BaseMeanMW, d.CandMeanMW = bMean, cMean
	d.MeanDeltaMW = cMean - bMean
	d.MeanDeltaPct = symmetricPct(bMean, cMean)
	d.BaseEnergyMJ, d.CandEnergyMJ = bEnergy, cEnergy
	d.EnergyDeltaMJ = cEnergy - bEnergy
	d.EnergyDeltaPct = symmetricPct(bEnergy, cEnergy)

	keys := make([]trace.EventKey, 0, len(bs)+len(cs))
	seen := make(map[trace.EventKey]bool, len(bs)+len(cs))
	for k := range bs {
		seen[k] = true
		keys = append(keys, k)
	}
	for k := range cs {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Class != keys[j].Class {
			return keys[i].Class < keys[j].Class
		}
		return keys[i].Callback < keys[j].Callback
	})

	for _, k := range keys {
		var b, c keyStats
		if s := bs[k]; s != nil {
			b = *s
		}
		if s := cs[k]; s != nil {
			c = *s
		}
		kd := KeyDelta{Key: k, BaseCount: b.count, CandCount: c.count}
		if b.count > 0 {
			kd.BaseMeanMW = b.sumMW / float64(b.count)
		}
		if c.count > 0 {
			kd.CandMeanMW = c.sumMW / float64(c.count)
		}
		kd.DeltaMW = kd.CandMeanMW - kd.BaseMeanMW
		kd.DeltaPct = symmetricPct(kd.BaseMeanMW, kd.CandMeanMW)
		kd.BaseImpactPct, kd.CandImpactPct = b.impactPct, c.impactPct
		kd.ImpactDeltaPct = c.impactPct - b.impactPct
		kd.NewlyManifesting = c.impactPct > 0 && b.impactPct == 0
		kd.Disappeared = b.impactPct > 0 && c.impactPct == 0
		if acc, ok := on[k]; ok {
			kd.OnsetTraces = acc.traces
			kd.OnsetDeltaMW = acc.deltaMW
		}
		kd.Score = kd.ImpactDeltaPct + kd.DeltaPct
		d.Deltas = append(d.Deltas, kd)
		if kd.NewlyManifesting {
			d.NewKeys = append(d.NewKeys, k)
		}
		if kd.Disappeared {
			d.GoneKeys = append(d.GoneKeys, k)
		}
	}
	d.rankSuspects()
	return d
}

// rankSuspects selects and orders the regression candidates from the
// (already key-sorted) Deltas. Keys with positive onset evidence rank
// first (largest attributed downstream drain on top); correlational
// suspects — keys whose score cleared the floor without any paired
// trace forking on them — follow, so diffs between unrelated corpora
// still produce a ranking.
func (d *Diff) rankSuspects() {
	d.Suspects = d.Suspects[:0]
	for _, kd := range d.Deltas {
		if kd.causal() {
			d.Suspects = append(d.Suspects, kd)
			continue
		}
		if kd.BaseCount+kd.CandCount < suspectMinInstances {
			continue
		}
		if kd.Score < suspectMinScore {
			continue
		}
		d.Suspects = append(d.Suspects, kd)
	}
	sort.SliceStable(d.Suspects, func(i, j int) bool {
		si, sj := d.Suspects[i], d.Suspects[j]
		if ci, cj := si.causal(), sj.causal(); ci != cj {
			return ci
		} else if ci && si.OnsetDeltaMW != sj.OnsetDeltaMW {
			return si.OnsetDeltaMW > sj.OnsetDeltaMW
		}
		return si.Score > sj.Score
	})
}

// TopSuspect returns the best regression candidate, if any.
func (d *Diff) TopSuspect() (KeyDelta, bool) {
	if len(d.Suspects) == 0 {
		return KeyDelta{}, false
	}
	return d.Suspects[0], true
}

// Negation returns the exact mirror of the diff: the diff Compare
// would produce with baseline and candidate swapped. Reverting a
// version chain back to its origin therefore yields Compare's output
// for the reverse direction — the metamorphic contract the revision
// suite pins.
func (d *Diff) Negation() *Diff {
	out := &Diff{
		AppID:              d.AppID,
		BaseTraces:         d.CandTraces,
		CandTraces:         d.BaseTraces,
		BaseImpactedTraces: d.CandImpactedTraces,
		CandImpactedTraces: d.BaseImpactedTraces,
		BaseMeanMW:         d.CandMeanMW,
		CandMeanMW:         d.BaseMeanMW,
		MeanDeltaMW:        -d.MeanDeltaMW,
		MeanDeltaPct:       -d.MeanDeltaPct,
		BaseEnergyMJ:       d.CandEnergyMJ,
		CandEnergyMJ:       d.BaseEnergyMJ,
		EnergyDeltaMJ:      -d.EnergyDeltaMJ,
		EnergyDeltaPct:     -d.EnergyDeltaPct,
		NewKeys:            append([]trace.EventKey(nil), d.GoneKeys...),
		GoneKeys:           append([]trace.EventKey(nil), d.NewKeys...),
	}
	if d.MeanDeltaMW == 0 {
		out.MeanDeltaMW = 0 // avoid -0
	}
	if d.MeanDeltaPct == 0 {
		out.MeanDeltaPct = 0
	}
	if d.EnergyDeltaMJ == 0 {
		out.EnergyDeltaMJ = 0
	}
	if d.EnergyDeltaPct == 0 {
		out.EnergyDeltaPct = 0
	}
	for _, kd := range d.Deltas {
		nk := KeyDelta{
			Key:              kd.Key,
			BaseMeanMW:       kd.CandMeanMW,
			CandMeanMW:       kd.BaseMeanMW,
			DeltaMW:          -kd.DeltaMW,
			DeltaPct:         -kd.DeltaPct,
			BaseCount:        kd.CandCount,
			CandCount:        kd.BaseCount,
			BaseImpactPct:    kd.CandImpactPct,
			CandImpactPct:    kd.BaseImpactPct,
			ImpactDeltaPct:   -kd.ImpactDeltaPct,
			NewlyManifesting: kd.Disappeared,
			Disappeared:      kd.NewlyManifesting,
			OnsetTraces:      kd.OnsetTraces,
			OnsetDeltaMW:     -kd.OnsetDeltaMW,
		}
		if kd.OnsetDeltaMW == 0 {
			nk.OnsetDeltaMW = 0
		}
		if kd.DeltaMW == 0 {
			nk.DeltaMW = 0
		}
		if kd.DeltaPct == 0 {
			nk.DeltaPct = 0
		}
		if kd.ImpactDeltaPct == 0 {
			nk.ImpactDeltaPct = 0
		}
		nk.Score = nk.ImpactDeltaPct + nk.DeltaPct
		out.Deltas = append(out.Deltas, nk)
	}
	out.rankSuspects()
	return out
}

// Empty reports whether the diff shows no change at all: identical
// per-key powers, impact tables, and trace counts.
func (d *Diff) Empty() bool {
	if d.BaseTraces != d.CandTraces || d.BaseImpactedTraces != d.CandImpactedTraces {
		return false
	}
	if d.MeanDeltaMW != 0 || d.EnergyDeltaMJ != 0 || len(d.NewKeys) > 0 || len(d.GoneKeys) > 0 {
		return false
	}
	for _, kd := range d.Deltas {
		if kd.DeltaMW != 0 || kd.ImpactDeltaPct != 0 || kd.BaseCount != kd.CandCount {
			return false
		}
	}
	return true
}

// WriteText renders the human-readable revision report.
func (d *Diff) WriteText(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("Energy revision diff for %s\n", d.AppID); err != nil {
		return err
	}
	if err := p("  baseline: %d traces (%d impacted)   candidate: %d traces (%d impacted)\n",
		d.BaseTraces, d.BaseImpactedTraces, d.CandTraces, d.CandImpactedTraces); err != nil {
		return err
	}
	if err := p("  mean event power: %.1f mW -> %.1f mW  (%+.1f mW, %+.1f%%)\n",
		d.BaseMeanMW, d.CandMeanMW, d.MeanDeltaMW, d.MeanDeltaPct); err != nil {
		return err
	}
	if err := p("  corpus event energy: %.0f mJ -> %.0f mJ  (%+.0f mJ, %+.1f%%)\n",
		d.BaseEnergyMJ, d.CandEnergyMJ, d.EnergyDeltaMJ, d.EnergyDeltaPct); err != nil {
		return err
	}
	if err := p("  newly manifesting keys: %d\n", len(d.NewKeys)); err != nil {
		return err
	}
	for _, k := range d.NewKeys {
		if err := p("    + %s\n", k); err != nil {
			return err
		}
	}
	if err := p("  disappeared keys: %d\n", len(d.GoneKeys)); err != nil {
		return err
	}
	for _, k := range d.GoneKeys {
		if err := p("    - %s\n", k); err != nil {
			return err
		}
	}
	if len(d.Suspects) == 0 {
		if err := p("  suspects: none (no key moved above the reporting floor)\n"); err != nil {
			return err
		}
	} else {
		if err := p("  suspects (culprit-ranked):\n"); err != nil {
			return err
		}
		for i, s := range d.Suspects {
			evidence := fmt.Sprintf("score %.1f", s.Score)
			if s.OnsetTraces > 0 {
				evidence = fmt.Sprintf("onset in %d traces %+.1f mW; score %.1f",
					s.OnsetTraces, s.OnsetDeltaMW, s.Score)
			}
			if err := p("    %d. %s  %+.1f mW (%+.1f%%)  impact %+.1fpp  %s\n",
				i+1, s.Key, s.DeltaMW, s.DeltaPct, s.ImpactDeltaPct, evidence); err != nil {
				return err
			}
		}
	}
	if err := p("  per-key deltas (by |delta|):\n"); err != nil {
		return err
	}
	byMag := append([]KeyDelta(nil), d.Deltas...)
	sort.SliceStable(byMag, func(i, j int) bool {
		return abs(byMag[i].DeltaMW) > abs(byMag[j].DeltaMW)
	})
	shown := 0
	for _, kd := range byMag {
		if shown >= 10 {
			break
		}
		if err := p("    %-60s %9.1f -> %9.1f mW  (%+.1f%%)  n=%d->%d\n",
			kd.Key.String(), kd.BaseMeanMW, kd.CandMeanMW, kd.DeltaPct, kd.BaseCount, kd.CandCount); err != nil {
			return err
		}
		shown++
	}
	if rest := len(byMag) - shown; rest > 0 {
		if err := p("    ... %d more keys\n", rest); err != nil {
			return err
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
