package revision

import (
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ChainConfig parameterizes a generated version chain.
type ChainConfig struct {
	// App is the base (v0) application.
	App *apps.App
	// Versions is the chain length including v0 (minimum 2).
	Versions int
	// Seed drives edit selection.
	Seed int64
	// EditsPerVersion is the number of benign edits per hop (default 2).
	EditsPerVersion int
	// RegressionAt, when positive, injects one energy regression into
	// that version (1-based within the chain). Zero means a clean chain.
	RegressionAt int
	// Kind selects the regression family; empty draws one from the seed.
	Kind Kind
	// Rewires additionally draws callback-rewire edits (which shuffle
	// real power between widgets). Differential stress chains set it;
	// chains that must pass the regression gate leave it off.
	Rewires bool
}

// Chain is a generated version chain with its ground truth.
type Chain struct {
	// Versions[0] is the unmodified base app.
	Versions []*Version
	// RegressionAt is the index of the version introducing the
	// regression (0 = clean chain).
	RegressionAt int
	// Culprit is the ground-truth culprit callback (regression chains).
	Culprit trace.EventKey
	// Kind is the injected regression family (regression chains).
	Kind Kind
}

// GenerateChain derives a version chain v0→vN from the base app by
// applying seeded mutation operators version over version. Generation
// is deterministic in the config.
func GenerateChain(cfg ChainConfig) (*Chain, error) {
	if cfg.App == nil {
		return nil, fmt.Errorf("revision: chain needs a base app")
	}
	if cfg.Versions < 2 {
		return nil, fmt.Errorf("revision: chain needs at least 2 versions, got %d", cfg.Versions)
	}
	if cfg.RegressionAt >= cfg.Versions {
		return nil, fmt.Errorf("revision: regression version %d out of chain of %d", cfg.RegressionAt, cfg.Versions)
	}
	edits := cfg.EditsPerVersion
	if edits <= 0 {
		edits = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	chain := &Chain{
		Versions:     []*Version{{Index: 0, App: cfg.App}},
		RegressionAt: cfg.RegressionAt,
	}
	for v := 1; v < cfg.Versions; v++ {
		parent := chain.Versions[v-1].App
		var es []Edit
		for i := 0; i < edits; i++ {
			e, ok := pickBenign(parent, rng)
			if !ok {
				continue
			}
			es = append(es, e)
		}
		if cfg.Rewires && rng.Intn(3) == 0 {
			if e, ok := pickRewire(parent, rng); ok {
				es = append(es, e)
			}
		}
		if v == cfg.RegressionAt {
			reg, err := pickRegression(parent, cfg.Kind, rng)
			if err != nil {
				return nil, err
			}
			es = append(es, reg)
			chain.Culprit = reg.Target
			chain.Kind = reg.Kind
		}
		ver, err := Derive(parent, v, es)
		if err != nil {
			return nil, err
		}
		chain.Versions = append(chain.Versions, ver)
	}
	return chain, nil
}

// pickRewire draws a behavior swap between two widgets of one activity.
func pickRewire(app *apps.App, rng *rand.Rand) (Edit, bool) {
	widgets := browseWidgetKeys(app)
	byAct := make(map[string][]trace.EventKey)
	var acts []string
	for _, w := range widgets {
		if len(byAct[w.Class]) == 0 {
			acts = append(acts, w.Class)
		}
		byAct[w.Class] = append(byAct[w.Class], w)
	}
	// acts is sorted because widgets is.
	var multi []string
	for _, a := range acts {
		if len(byAct[a]) >= 2 {
			multi = append(multi, a)
		}
	}
	if len(multi) == 0 {
		return Edit{}, false
	}
	ws := byAct[multi[rng.Intn(len(multi))]]
	i := rng.Intn(len(ws))
	j := (i + 1 + rng.Intn(len(ws)-1)) % len(ws)
	return Edit{Op: OpRewire, Target: ws[i], Other: ws[j]}, true
}

// CorpusConfig shapes the per-version corpora of a chain. Every version
// is generated with the same workload seed, so sessions that never
// touch an edited callback produce byte-identical bundles — the
// cross-version sharing the delta-fed analyzer exploits.
type CorpusConfig struct {
	// Users per version corpus (default 12).
	Users int
	// Seed is the workload seed shared by every version (default 1).
	Seed int64
	// BrowsePhases per session (default 6).
	BrowsePhases int
	// ImpactedFraction is the fraction of users triggering the base
	// app's own ABD. The default 0 keeps the base fault dormant so the
	// only anomalies in a chain are the ones its edits introduce.
	ImpactedFraction float64
	// Cached routes generation through workload.GenerateCached, keyed
	// safely per version via Config.Variant.
	Cached bool
	// variantPrefix discriminates corpora of distinct chains in the
	// workload cache; set from the chain config by ChainCorpora.
	variantPrefix string
}

// workloadConfig assembles the workload config for one version.
func (cc CorpusConfig) workloadConfig(v *Version) workload.Config {
	users := cc.Users
	if users <= 0 {
		users = 12
	}
	seed := cc.Seed
	if seed == 0 {
		seed = 1
	}
	phases := cc.BrowsePhases
	if phases <= 0 {
		phases = 6
	}
	cfg := workload.DefaultConfig(v.App, seed)
	cfg.Users = users
	cfg.ImpactedFraction = cc.ImpactedFraction
	cfg.BrowsePhases = phases
	cfg.Variant = fmt.Sprintf("%sv%d", cc.variantPrefix, v.Index)
	return cfg
}

// VersionCorpus generates the trace corpus of one chain version.
func VersionCorpus(v *Version, cc CorpusConfig) ([]*trace.TraceBundle, error) {
	cfg := cc.workloadConfig(v)
	gen := workload.Generate
	if cc.Cached {
		gen = workload.GenerateCached
	}
	res, err := gen(cfg)
	if err != nil {
		return nil, fmt.Errorf("revision: corpus v%d: %w", v.Index, err)
	}
	return res.Bundles, nil
}

// ChainCorpora generates every version's corpus. With cc.Cached set the
// corpora are memoized process-wide under a variant key derived from
// the chain config, so repeated runs of the same chain (differential
// battery vs gate test vs experiment) pay one simulation each.
func ChainCorpora(chain *Chain, chainCfg ChainConfig, cc CorpusConfig) ([][]*trace.TraceBundle, error) {
	cc.variantPrefix = fmt.Sprintf("rev:%d:%d:%d:%s:%t:", chainCfg.Seed,
		chainCfg.EditsPerVersion, chainCfg.RegressionAt, chainCfg.Kind, chainCfg.Rewires)
	out := make([][]*trace.TraceBundle, len(chain.Versions))
	for i, v := range chain.Versions {
		bundles, err := VersionCorpus(v, cc)
		if err != nil {
			return nil, err
		}
		out[i] = bundles
	}
	return out, nil
}
