package revision

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps"
)

// chainDeltas generates codec units from real chains — the seeds for
// both the round-trip test and the fuzz corpus.
func chainDeltas(t testing.TB) []VersionDelta {
	t.Helper()
	var out []VersionDelta
	for _, appID := range []string{"k9mail", "sensorium"} {
		app, err := apps.ByAppID(appID)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			chain, err := GenerateChain(ChainConfig{
				App: app, Versions: 4, Seed: seed, RegressionAt: 2, Rewires: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range chain.Versions[1:] {
				out = append(out, DeltaForVersion(appID, v))
			}
		}
	}
	return out
}

// TestDeltaRoundTrip: encode → parse is the identity on every delta a
// real chain produces.
func TestDeltaRoundTrip(t *testing.T) {
	for _, d := range chainDeltas(t) {
		var buf bytes.Buffer
		if err := EncodeDelta(&buf, d); err != nil {
			t.Fatal(err)
		}
		got, err := ParseDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("parse of encoded delta failed: %v\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(got, d) {
			t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v\ntext:\n%s", d, got, buf.String())
		}
	}
}

// TestParseDeltaRejects pins the parser's error cases.
func TestParseDeltaRejects(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad-header", "energydx-revision v2\napp a\nrev 1\nend\n"},
		{"no-app", "energydx-revision v1\nrev 1\nend\n"},
		{"no-rev", "energydx-revision v1\napp a\nend\n"},
		{"no-end", "energydx-revision v1\napp a\nrev 1\n"},
		{"dup-app", "energydx-revision v1\napp a\napp b\nrev 1\nend\n"},
		{"negative-rev", "energydx-revision v1\napp a\nrev -1\nend\n"},
		{"unknown-verb", "energydx-revision v1\napp a\nrev 1\nbogus\nend\n"},
		{"unknown-op", "energydx-revision v1\napp a\nrev 1\nedit explode key=\"a;b\"\nend\n"},
		{"missing-key", "energydx-revision v1\napp a\nrev 1\nedit method-tweak factor=1\nend\n"},
		{"nan-factor", "energydx-revision v1\napp a\nrev 1\nedit method-tweak key=\"a;b\" factor=NaN\nend\n"},
		{"inf-factor", "energydx-revision v1\napp a\nrev 1\nedit method-tweak key=\"a;b\" factor=+Inf\nend\n"},
		{"bad-kind", "energydx-revision v1\napp a\nrev 1\nedit regression key=\"a;b\" kind=melt\nend\n"},
		{"unterminated-quote", "energydx-revision v1\napp a\nrev 1\nedit method-tweak key=\"a;b\nend\n"},
		{"key-without-semicolon", "energydx-revision v1\napp a\nrev 1\nedit method-tweak key=\"ab\"\nend\n"},
		{"trailing-end", "energydx-revision v1\napp a\nrev 1\nend extra\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseDelta(strings.NewReader(tc.input)); err == nil {
				t.Fatalf("parser accepted %q", tc.input)
			}
		})
	}
}

// FuzzRevisionDelta: the parser never panics on arbitrary input, and
// any input it accepts re-encodes to a form it parses back to the same
// value (parse ∘ encode fixpoint).
func FuzzRevisionDelta(f *testing.F) {
	for _, d := range chainDeltas(f) {
		var buf bytes.Buffer
		if err := EncodeDelta(&buf, d); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("energydx-revision v1\napp a\nrev 0\nend\n"))
	f.Add([]byte("energydx-revision v1\napp a\nrev 3\nedit regression key=\"L;on\" kind=hold factor=3.5\nend\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ParseDelta(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeDelta(&buf, d); err != nil {
			t.Fatalf("re-encode of parsed delta failed: %v\n%+v", err, d)
		}
		again, err := ParseDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of re-encoded delta failed: %v\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(d, again) {
			t.Fatalf("parse/encode fixpoint broken:\nfirst  %+v\nsecond %+v\ntext:\n%s", d, again, buf.String())
		}
	})
}
