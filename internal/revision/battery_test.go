package revision

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/trace"
)

// orderSim independently models the corpus order the incremental
// analyzer maintains: surviving bundles keep their positions, new
// bundles append in arrival order, and a bundle re-added after a
// removal re-enters at the end (its original slot is gone). The
// battery replays every version through this model and batch-analyzes
// the modeled order, so a drift in the analyzer's insertion-order
// semantics fails the byte-identity check rather than silently
// re-defining "expected".
type orderSim struct {
	order []string
	byKey map[string]*trace.TraceBundle
}

func newOrderSim() *orderSim {
	return &orderSim{byKey: make(map[string]*trace.TraceBundle)}
}

// sync applies one version's corpus: removals first conceptually, but
// since a version never removes a key it also contains, add-then-remove
// and remove-then-add agree on the final order.
func (s *orderSim) sync(bundles []*trace.TraceBundle) {
	live := make(map[string]bool, len(bundles))
	for _, b := range bundles {
		key := trace.ContentKey(b)
		live[key] = true
		if _, ok := s.byKey[key]; !ok {
			s.byKey[key] = b
			s.order = append(s.order, key)
		}
	}
	kept := s.order[:0]
	for _, key := range s.order {
		if live[key] {
			kept = append(kept, key)
		} else {
			delete(s.byKey, key)
		}
	}
	s.order = kept
}

func (s *orderSim) bundles() []*trace.TraceBundle {
	out := make([]*trace.TraceBundle, len(s.order))
	for i, key := range s.order {
		out[i] = s.byKey[key]
	}
	return out
}

// batteryCase is one differential-battery chain.
type batteryCase struct {
	appID    string
	seed     int64
	kind     Kind // "" = clean chain
	regrAt   int  // 0 = clean
	versions int
	cacheCap int // 0 = default; tiny caps interleave eviction with hops
	revisit  bool
}

func (c batteryCase) name() string {
	kind := string(c.kind)
	if kind == "" {
		kind = "clean"
	}
	return fmt.Sprintf("%s/%s/seed=%d/cap=%d/revisit=%t", c.appID, kind, c.seed, c.cacheCap, c.revisit)
}

// batteryCases enumerates the chains: every app × regression kind ×
// seed, clean chains, plus tiny-cache and revisit variants. Well over
// 100 chains in full mode; -short trims the seed range.
func batteryCases(short bool) []batteryCase {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7}
	if short {
		seeds = seeds[:2]
	}
	var out []batteryCase
	for _, appID := range []string{"k9mail", "sensorium", "opencamera"} {
		for _, seed := range seeds {
			for _, kind := range Kinds() {
				out = append(out, batteryCase{appID: appID, seed: seed, kind: kind, regrAt: 2, versions: 4})
			}
			out = append(out, batteryCase{appID: appID, seed: seed, versions: 5})
			// Tiny caps: the Step-1 cache thrashes (evictions between a
			// removal and the matching re-add) while versions hop.
			out = append(out, batteryCase{appID: appID, seed: seed, kind: KindHold, regrAt: 1, versions: 3, cacheCap: 2, revisit: true})
			out = append(out, batteryCase{appID: appID, seed: seed, versions: 3, cacheCap: 7, revisit: true})
		}
	}
	return out
}

// TestDifferentialBattery drives every chain through the delta-fed
// incremental path and requires the report after every version hop —
// including revert hops under a thrashing cache — to be byte-identical
// to a fresh batch Analyze of the same bundles in the modeled order.
func TestDifferentialBattery(t *testing.T) {
	cases := batteryCases(testing.Short())
	if !testing.Short() && len(cases) < 100 {
		t.Fatalf("battery has %d chains, want >= 100", len(cases))
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name(), func(t *testing.T) {
			t.Parallel()
			app, err := apps.ByAppID(tc.appID)
			if err != nil {
				t.Fatal(err)
			}
			ccfg := ChainConfig{
				App: app, Versions: tc.versions, Seed: tc.seed,
				EditsPerVersion: 2, RegressionAt: tc.regrAt, Kind: tc.kind, Rewires: true,
			}
			chain, err := GenerateChain(ccfg)
			if err != nil {
				t.Fatal(err)
			}
			corpora, err := ChainCorpora(chain, ccfg, CorpusConfig{Users: 5, Seed: 11, BrowsePhases: 4})
			if err != nil {
				t.Fatal(err)
			}
			inc, err := NewAnalyzer(AnalyzeConfig{CacheCap: tc.cacheCap})
			if err != nil {
				t.Fatal(err)
			}
			batch, err := core.NewAnalyzer(core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			sim := newOrderSim()
			steps := make([][]*trace.TraceBundle, 0, tc.versions+2)
			steps = append(steps, corpora...)
			if tc.revisit {
				// Revert to v0, hop to the head, and back again: the
				// remove-then-re-add access pattern of a bisect session.
				steps = append(steps, corpora[0], corpora[len(corpora)-1], corpora[0])
			}
			for i, bundles := range steps {
				vr, err := inc.AnalyzeVersion(i, bundles)
				if err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				sim.sync(bundles)
				want, err := batch.Analyze(sim.bundles())
				if err != nil {
					t.Fatalf("step %d: batch: %v", i, err)
				}
				gotJSON, err := json.Marshal(vr.Report)
				if err != nil {
					t.Fatal(err)
				}
				wantJSON, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotJSON, wantJSON) {
					t.Fatalf("step %d: incremental report differs from batch (%d vs %d bytes)",
						i, len(gotJSON), len(wantJSON))
				}
			}
		})
	}
}
