package revision

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// The version-delta codec serializes one version's edit list as a
// small line-oriented text format, so a chain can be stored or shipped
// alongside its corpora:
//
//	energydx-revision v1
//	app k9mail
//	rev 3
//	edit method-tweak key="Lcom/k9mail/ListActivity;onClick" factor=1.025
//	edit regression key="Lcom/k9mail/ListActivity;onItemClick" kind=hold factor=3.41
//	end
//
// Keys are encoded as a quoted "class;callback" pair (EventKey.Validate
// forbids ';' inside the class, so the first ';' splits unambiguously).

const codecHeader = "energydx-revision v1"

// VersionDelta is the codec's unit: one version's identity and edits.
type VersionDelta struct {
	AppID string `json:"appId"`
	Rev   int    `json:"rev"`
	Edits []Edit `json:"edits"`
}

// DeltaForVersion extracts the codec unit from a chain version.
func DeltaForVersion(appID string, v *Version) VersionDelta {
	return VersionDelta{AppID: appID, Rev: v.Index, Edits: v.Edits}
}

func quoteKey(k trace.EventKey) string {
	return strconv.Quote(k.Class + ";" + k.Callback)
}

func parseKey(s string) (trace.EventKey, error) {
	raw, err := strconv.Unquote(s)
	if err != nil {
		return trace.EventKey{}, fmt.Errorf("revision: bad key %s: %w", s, err)
	}
	i := strings.IndexByte(raw, ';')
	if i < 0 {
		return trace.EventKey{}, fmt.Errorf("revision: key %q has no ';'", raw)
	}
	return trace.EventKey{Class: raw[:i], Callback: raw[i+1:]}, nil
}

// EncodeDelta writes the version delta in the text format.
func EncodeDelta(w io.Writer, d VersionDelta) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, codecHeader)
	fmt.Fprintf(bw, "app %s\n", d.AppID)
	fmt.Fprintf(bw, "rev %d\n", d.Rev)
	for _, e := range d.Edits {
		fmt.Fprintf(bw, "edit %s key=%s", e.Op, quoteKey(e.Target))
		if e.Other != (trace.EventKey{}) {
			fmt.Fprintf(bw, " other=%s", quoteKey(e.Other))
		}
		if e.Factor != 0 {
			fmt.Fprintf(bw, " factor=%s", strconv.FormatFloat(e.Factor, 'g', -1, 64))
		}
		if e.Call != "" {
			fmt.Fprintf(bw, " call=%s", strconv.Quote(e.Call))
		}
		if e.ConfigKey != "" {
			fmt.Fprintf(bw, " ckey=%s", strconv.Quote(e.ConfigKey))
		}
		if e.ConfigValue != "" {
			fmt.Fprintf(bw, " cval=%s", strconv.Quote(e.ConfigValue))
		}
		if e.Kind != "" {
			fmt.Fprintf(bw, " kind=%s", e.Kind)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// ParseDelta reads one version delta in the text format. It rejects
// malformed input with an error and never panics; the fuzz target
// FuzzRevisionDelta pins both properties plus encode/parse round-trip
// stability.
func ParseDelta(r io.Reader) (VersionDelta, error) {
	var d VersionDelta
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		return d, fmt.Errorf("revision: empty delta")
	}
	if sc.Text() != codecHeader {
		return d, fmt.Errorf("revision: bad header %q", sc.Text())
	}
	sawApp, sawRev, sawEnd := false, false, false
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		switch verb {
		case "app":
			if sawApp || rest == "" || strings.ContainsAny(rest, " \t") {
				return d, fmt.Errorf("revision: bad app line %q", line)
			}
			d.AppID = rest
			sawApp = true
		case "rev":
			if sawRev {
				return d, fmt.Errorf("revision: duplicate rev line")
			}
			n, err := strconv.Atoi(rest)
			if err != nil || n < 0 {
				return d, fmt.Errorf("revision: bad rev line %q", line)
			}
			d.Rev = n
			sawRev = true
		case "edit":
			e, err := parseEditLine(rest)
			if err != nil {
				return d, err
			}
			d.Edits = append(d.Edits, e)
		case "end":
			if rest != "" {
				return d, fmt.Errorf("revision: trailing content on end line")
			}
			sawEnd = true
		default:
			return d, fmt.Errorf("revision: unknown line %q", line)
		}
		if sawEnd {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return d, fmt.Errorf("revision: read delta: %w", err)
	}
	if !sawApp || !sawRev || !sawEnd {
		return d, fmt.Errorf("revision: truncated delta (app=%t rev=%t end=%t)", sawApp, sawRev, sawEnd)
	}
	return d, nil
}

// validOps gates the ops the parser accepts.
var validOps = map[Op]bool{
	OpMethodTweak: true, OpAPIAdd: true, OpAPIRemove: true,
	OpHelperEdit: true, OpConfigFlip: true, OpRewire: true, OpRegression: true,
}

var validKinds = map[Kind]bool{KindHold: true, KindLoop: true, KindHot: true}

// parseEditLine parses the part of an edit line after the verb.
func parseEditLine(rest string) (Edit, error) {
	var e Edit
	fields, err := splitQuoted(rest)
	if err != nil {
		return e, err
	}
	if len(fields) == 0 {
		return e, fmt.Errorf("revision: empty edit line")
	}
	e.Op = Op(fields[0])
	if !validOps[e.Op] {
		return e, fmt.Errorf("revision: unknown edit op %q", fields[0])
	}
	sawKey := false
	for _, f := range fields[1:] {
		name, val, ok := strings.Cut(f, "=")
		if !ok {
			return e, fmt.Errorf("revision: bad edit field %q", f)
		}
		switch name {
		case "key":
			if e.Target, err = parseKey(val); err != nil {
				return e, err
			}
			sawKey = true
		case "other":
			if e.Other, err = parseKey(val); err != nil {
				return e, err
			}
		case "factor":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return e, fmt.Errorf("revision: bad factor %q", val)
			}
			e.Factor = v
		case "call":
			if e.Call, err = strconv.Unquote(val); err != nil {
				return e, fmt.Errorf("revision: bad call %q: %w", val, err)
			}
		case "ckey":
			if e.ConfigKey, err = strconv.Unquote(val); err != nil {
				return e, fmt.Errorf("revision: bad ckey %q: %w", val, err)
			}
		case "cval":
			if e.ConfigValue, err = strconv.Unquote(val); err != nil {
				return e, fmt.Errorf("revision: bad cval %q: %w", val, err)
			}
		case "kind":
			e.Kind = Kind(val)
			if !validKinds[e.Kind] {
				return e, fmt.Errorf("revision: unknown kind %q", val)
			}
		default:
			return e, fmt.Errorf("revision: unknown edit field %q", name)
		}
	}
	if !sawKey {
		return e, fmt.Errorf("revision: edit line missing key")
	}
	return e, nil
}

// splitQuoted splits on spaces outside double-quoted regions, keeping
// the quotes (fields are unquoted individually by their handlers).
func splitQuoted(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	escaped := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			cur.WriteByte(c)
			escaped = false
		case inQuote && c == '\\':
			cur.WriteByte(c)
			escaped = true
		case c == '"':
			cur.WriteByte(c)
			inQuote = !inQuote
		case c == ' ' && !inQuote:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("revision: unterminated quote in %q", s)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out, nil
}
