package revision

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

// GateConfig is the threshold set of the CI-style energy regression
// gate: how much a candidate version may move before the gate fails
// the build.
type GateConfig struct {
	// MaxMeanDeltaPct fails the gate when the corpus-wide mean event
	// power rises by more than this percentage.
	MaxMeanDeltaPct float64 `json:"maxMeanDeltaPct"`
	// MaxEnergyDeltaPct fails the gate when the corpus-wide event
	// energy rises by more than this percentage. Energy neither
	// saturates at the device power ceiling nor dilutes across event
	// counts, and callback rewires conserve it — so this rule catches
	// hot rewrites whose power signature hides under per-key noise.
	MaxEnergyDeltaPct float64 `json:"maxEnergyDeltaPct"`
	// MaxKeyDeltaPct fails the gate when any single event key's mean
	// power rises by more than this percentage (keys with fewer than
	// MinInstances instances on both sides combined are ignored).
	MaxKeyDeltaPct float64 `json:"maxKeyDeltaPct"`
	// MaxOnsetPerTraceMW fails the gate when a key with onset evidence
	// in at least MinOnsetTraces paired traces drains more than this
	// many milliwatts of downstream mean power per affected trace. This
	// is the rule that catches drains whose cost surfaces away from the
	// culprit's own instances (wakelock holds, background loops) and
	// hot rewrites too diluted to move the corpus mean.
	MaxOnsetPerTraceMW float64 `json:"maxOnsetPerTraceMilliwatts"`
	// MinOnsetTraces is the pairing floor for MaxOnsetPerTraceMW.
	MinOnsetTraces int `json:"minOnsetTraces"`
	// MaxNewManifesting fails the gate when more than this many event
	// keys newly coincide with manifestation windows.
	MaxNewManifesting int `json:"maxNewManifesting"`
	// MaxImpactedRisePct fails the gate when the fraction of traces
	// containing a manifestation rises by more than this many
	// percentage points.
	MaxImpactedRisePct float64 `json:"maxImpactedRisePct"`
	// MinInstances is the per-key noise guard for MaxKeyDeltaPct.
	MinInstances int `json:"minInstances"`
}

// DefaultGate returns thresholds that tolerate benign refactor drift —
// session-timing shifts from small latency tweaks, callback rewires
// that move (but conserve) work between handlers — but fail on every
// injected regression family. The gate presumes a healthy baseline: a
// baseline that already drains amplifies any timing perturbation into
// large deltas, and no threshold separates those from fresh drains.
func DefaultGate() GateConfig {
	return GateConfig{
		MaxMeanDeltaPct:    8,
		MaxEnergyDeltaPct:  10,
		MaxKeyDeltaPct:     60,
		MaxOnsetPerTraceMW: 120,
		MinOnsetTraces:     2,
		MaxNewManifesting:  0,
		MaxImpactedRisePct: 10,
		MinInstances:       3,
	}
}

// LoadGate reads a gate threshold config from a JSON file. Absent
// fields keep their default values, so a config can override a single
// threshold.
func LoadGate(path string) (GateConfig, error) {
	g := DefaultGate()
	data, err := os.ReadFile(path)
	if err != nil {
		return g, fmt.Errorf("revision: gate config: %w", err)
	}
	if err := json.Unmarshal(data, &g); err != nil {
		return g, fmt.Errorf("revision: gate config %s: %w", path, err)
	}
	return g, nil
}

// Violation is one gate breach.
type Violation struct {
	// Rule names the breached threshold.
	Rule string `json:"rule"`
	// Key is the offending event key (per-key rules only).
	Key *trace.EventKey `json:"key,omitempty"`
	// Value and Limit quantify the breach.
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
}

// String renders the violation for gate output.
func (v Violation) String() string {
	if v.Key != nil {
		return fmt.Sprintf("%s: %s %.1f exceeds %.1f", v.Rule, *v.Key, v.Value, v.Limit)
	}
	return fmt.Sprintf("%s: %.1f exceeds %.1f", v.Rule, v.Value, v.Limit)
}

// GateResult is the gate verdict for one diff.
type GateResult struct {
	Pass       bool        `json:"pass"`
	Violations []Violation `json:"violations,omitempty"`
}

// Evaluate applies the thresholds to a diff.
func (g GateConfig) Evaluate(d *Diff) GateResult {
	var res GateResult
	if d.MeanDeltaPct > g.MaxMeanDeltaPct {
		res.Violations = append(res.Violations, Violation{
			Rule: "mean-power-delta-pct", Value: d.MeanDeltaPct, Limit: g.MaxMeanDeltaPct,
		})
	}
	if d.EnergyDeltaPct > g.MaxEnergyDeltaPct {
		res.Violations = append(res.Violations, Violation{
			Rule: "energy-delta-pct", Value: d.EnergyDeltaPct, Limit: g.MaxEnergyDeltaPct,
		})
	}
	for _, kd := range d.Deltas {
		if kd.BaseCount+kd.CandCount < g.MinInstances {
			continue
		}
		if kd.DeltaPct > g.MaxKeyDeltaPct {
			key := kd.Key
			res.Violations = append(res.Violations, Violation{
				Rule: "key-power-delta-pct", Key: &key, Value: kd.DeltaPct, Limit: g.MaxKeyDeltaPct,
			})
		}
	}
	for _, kd := range d.Deltas {
		if kd.OnsetTraces == 0 || kd.OnsetTraces < g.MinOnsetTraces {
			continue
		}
		if perTrace := kd.OnsetDeltaMW / float64(kd.OnsetTraces); perTrace > g.MaxOnsetPerTraceMW {
			key := kd.Key
			res.Violations = append(res.Violations, Violation{
				Rule: "onset-drain-mw-per-trace", Key: &key, Value: perTrace, Limit: g.MaxOnsetPerTraceMW,
			})
		}
	}
	if n := len(d.NewKeys); n > g.MaxNewManifesting {
		res.Violations = append(res.Violations, Violation{
			Rule: "newly-manifesting-keys", Value: float64(n), Limit: float64(g.MaxNewManifesting),
		})
	}
	baseImpactPct := pct(d.BaseImpactedTraces, d.BaseTraces)
	candImpactPct := pct(d.CandImpactedTraces, d.CandTraces)
	if rise := candImpactPct - baseImpactPct; rise > g.MaxImpactedRisePct {
		res.Violations = append(res.Violations, Violation{
			Rule: "impacted-traces-rise-pct", Value: rise, Limit: g.MaxImpactedRisePct,
		})
	}
	res.Pass = len(res.Violations) == 0
	return res
}

func pct(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// WriteText renders the gate verdict.
func (r GateResult) WriteText(w io.Writer) error {
	if r.Pass {
		_, err := fmt.Fprintln(w, "energy regression gate: PASS")
		return err
	}
	if _, err := fmt.Fprintf(w, "energy regression gate: FAIL (%d violations)\n", len(r.Violations)); err != nil {
		return err
	}
	for _, v := range r.Violations {
		if _, err := fmt.Fprintf(w, "  %s\n", v); err != nil {
			return err
		}
	}
	return nil
}
