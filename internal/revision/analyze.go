package revision

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// AnalyzeConfig parameterizes the chain analyzer.
type AnalyzeConfig struct {
	// Core is the manifestation-analysis configuration (zero value:
	// core.DefaultConfig).
	Core core.Config
	// CacheCap bounds the Step-1 cache (0 = core.DefaultStepCacheCap).
	// The differential battery sets tiny caps to interleave eviction
	// with version hops.
	CacheCap int
	// Revisit re-syncs the analyzer to v0 and back to vN after the
	// forward walk — the bisect/revert access pattern. Bundles dropped
	// mid-chain re-enter through the retained Step-1 cache, so this is
	// where cross-version cache reuse actually shows up as hits (a pure
	// forward walk never re-looks-up a shared bundle).
	Revisit bool
}

// Analyzer feeds successive versions of one app through a single
// core.IncrementalAnalyzer by applying only the bundle add/remove delta
// between versions. Bundles shared with the previous version — in a
// realistic chain, most of them — keep their Step-1 results and their
// contributions to the per-key order-statistic summaries; only the
// sessions an edit actually changed are re-estimated.
type Analyzer struct {
	inc *core.IncrementalAnalyzer
}

// NewAnalyzer builds a chain analyzer.
func NewAnalyzer(cfg AnalyzeConfig) (*Analyzer, error) {
	var zero core.Config
	if cfg.Core == zero {
		cfg.Core = core.DefaultConfig()
	}
	inc, err := core.NewIncrementalAnalyzer(cfg.Core, cfg.CacheCap)
	if err != nil {
		return nil, fmt.Errorf("revision: %w", err)
	}
	return &Analyzer{inc: inc}, nil
}

// Delta summarizes the corpus mutation one version hop required.
type Delta struct {
	// Added / Removed are the bundle-level corpus mutations applied.
	Added   int `json:"added"`
	Removed int `json:"removed"`
	// Shared counts the candidate's bundles carried over unchanged from
	// the previous version.
	Shared int `json:"shared"`
}

// VersionResult is the analysis of one chain version.
type VersionResult struct {
	Index  int          `json:"index"`
	Report *core.Report `json:"-"`
	Delta  Delta        `json:"delta"`
	// Summary is the version's report summary (timeline row).
	Summary core.ReportSummary `json:"summary"`
	// CacheStats snapshots the cumulative Step-1 cache counters after
	// this version's analysis.
	CacheStats core.CacheStats `json:"cacheStats"`
}

// AnalyzeVersion syncs the analyzer's corpus to the version's bundles
// (content-key diff: add what is new, remove what disappeared) and
// re-analyzes. Surviving bundles keep their original corpus positions;
// new bundles append in corpus order — the same insertion-order
// semantics the serving layer's watch path uses.
func (a *Analyzer) AnalyzeVersion(index int, bundles []*trace.TraceBundle) (*VersionResult, error) {
	res := &VersionResult{Index: index}
	live := make(map[string]bool, len(bundles))
	for _, b := range bundles {
		key, added := a.inc.Add(b)
		live[key] = true
		if added {
			res.Delta.Added++
		}
	}
	for _, key := range a.inc.Keys() {
		if !live[key] {
			a.inc.Remove(key)
			res.Delta.Removed++
		}
	}
	res.Delta.Shared = len(live) - res.Delta.Added
	rep, err := a.inc.Report()
	if err != nil {
		return nil, fmt.Errorf("revision: analyze v%d: %w", index, err)
	}
	res.Report = rep
	res.Summary = rep.Summarize(5)
	res.CacheStats = a.inc.CacheStats()
	return res, nil
}

// CacheStats snapshots the underlying Step-1 cache counters.
func (a *Analyzer) CacheStats() core.CacheStats { return a.inc.CacheStats() }

// ChainResult is the analysis of a whole chain: the per-version
// timeline plus the consecutive-version diffs.
type ChainResult struct {
	// Versions holds one result per chain version, in order.
	Versions []*VersionResult
	// Diffs[i] compares version i (baseline) to version i+1 (candidate).
	Diffs []*Diff
	// CacheHitRate is the cross-version Step-1 cache hit rate over the
	// whole chain run.
	CacheHitRate float64
	// RevisitHitRate is the Step-1 cache hit rate during the revert
	// hops (AnalyzeConfig.Revisit only): how much of a revisited
	// version's estimation work the cache absorbed. RevisitLookups is
	// the number of cache lookups those hops made — zero when every hop
	// was static-only (corpus unchanged), in which case the rate is
	// meaningless and stays 0.
	RevisitHitRate float64
	RevisitLookups int64
	// SharedFraction is the mean fraction of a version's bundles shared
	// with its predecessor (v1..vN).
	SharedFraction float64
}

// RunChain generates each version's corpus and feeds the chain through
// one delta-fed analyzer, diffing consecutive versions.
func RunChain(chain *Chain, chainCfg ChainConfig, cc CorpusConfig, acfg AnalyzeConfig) (*ChainResult, error) {
	corpora, err := ChainCorpora(chain, chainCfg, cc)
	if err != nil {
		return nil, err
	}
	a, err := NewAnalyzer(acfg)
	if err != nil {
		return nil, err
	}
	out := &ChainResult{}
	sharedSum := 0.0
	for i, bundles := range corpora {
		vr, err := a.AnalyzeVersion(i, bundles)
		if err != nil {
			return nil, err
		}
		out.Versions = append(out.Versions, vr)
		if i > 0 {
			out.Diffs = append(out.Diffs, Compare(out.Versions[i-1].Report, vr.Report))
			if n := vr.Delta.Shared + vr.Delta.Added; n > 0 {
				sharedSum += float64(vr.Delta.Shared) / float64(n)
			}
		}
	}
	if n := len(out.Versions) - 1; n > 0 {
		out.SharedFraction = sharedSum / float64(n)
	}
	if acfg.Revisit && len(corpora) > 1 {
		before := a.CacheStats()
		if _, err := a.AnalyzeVersion(0, corpora[0]); err != nil {
			return nil, err
		}
		last := len(corpora) - 1
		if _, err := a.AnalyzeVersion(last, corpora[last]); err != nil {
			return nil, err
		}
		after := a.CacheStats()
		if lk := after.Lookups - before.Lookups; lk > 0 {
			out.RevisitLookups = lk
			out.RevisitHitRate = float64(after.Hits-before.Hits) / float64(lk)
		}
	}
	st := a.CacheStats()
	if st.Lookups > 0 {
		out.CacheHitRate = float64(st.Hits) / float64(st.Lookups)
	}
	return out, nil
}
