// Package revision models app evolution: versioned APKs derived from a
// base app by deterministic seeded mutation operators, a chain corpus
// generator in which consecutive versions share most trace bundles, a
// delta-fed analyzer that reuses one core.IncrementalAnalyzer (and its
// Step-1 cache and order-statistic summaries) across the whole chain,
// and a revision diff report with a CI-style regression gate.
//
// The workload follows Schuler & Kotsis ("Mining API Interactions to
// Analyze Software Revisions for the Evolution of Energy Consumption"):
// the high-value question is not whether one snapshot has an anomaly
// but what changed between revisions. The injected regression kinds
// follow Li et al.'s energy-issue taxonomy — wakelock additions, loop
// tightening, hot rewrites — the edit classes that turn a healthy
// version into an anomalous one.
package revision

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/apps"
	"repro/internal/trace"
)

// Op enumerates the mutation operators a revision edit can apply.
type Op string

const (
	// OpMethodTweak scales a callback's hardware usage and latency by
	// Factor (a small refactor that makes the callback slightly cheaper
	// or dearer) and perturbs its source-line count.
	OpMethodTweak Op = "method-tweak"
	// OpAPIAdd inserts an API call into the method body. Static-only:
	// the modelled call (logging, analytics) has no energy cost, so the
	// version's corpus is byte-identical to its parent's.
	OpAPIAdd Op = "api-add"
	// OpAPIRemove removes an API call inserted by a previous OpAPIAdd
	// (or is a no-op when none is present). Static-only.
	OpAPIRemove Op = "api-remove"
	// OpHelperEdit rewrites a non-callback helper method (line-count
	// change). Static-only: helpers never execute in the workload.
	OpHelperEdit Op = "helper-edit"
	// OpConfigFlip rewrites the value written by a SetConfig effect.
	OpConfigFlip Op = "config-flip"
	// OpRewire swaps the behaviors of two widget callbacks on the same
	// activity (a refactor that moves work between handlers).
	OpRewire Op = "callback-rewire"
	// OpRegression injects an energy regression of the given Kind into
	// the target callback. The target is the chain's ground-truth
	// culprit.
	OpRegression Op = "regression"
)

// Kind enumerates the injected regression families, after Li et al.'s
// taxonomy of energy-issue-introducing edits.
type Kind string

const (
	// KindHold adds a resource acquire with no matching release to the
	// target callback (wakelock addition): every invocation starts a
	// sustained hold.
	KindHold Kind = "hold"
	// KindLoop starts an unstopped periodic background task from the
	// target callback (loop tightening / sync storm).
	KindLoop Kind = "loop"
	// KindHot multiplies the target callback's own hardware usage
	// (an expensive rewrite of the handler itself). The drain is
	// confined to the callback's instances, so it never creates new
	// manifestation points — only the per-key power delta catches it.
	KindHot Kind = "hot"
)

// Kinds lists the regression families in deterministic order.
func Kinds() []Kind { return []Kind{KindHold, KindLoop, KindHot} }

// Edit is one mutation applied by a revision.
type Edit struct {
	// Op selects the mutation operator.
	Op Op `json:"op"`
	// Target is the edited method.
	Target trace.EventKey `json:"target"`
	// Other is the second widget of a callback-rewire.
	Other trace.EventKey `json:"other,omitempty"`
	// Factor scales usages for method tweaks and hot regressions.
	Factor float64 `json:"factor,omitempty"`
	// Call is the API descriptor for api-add / api-remove.
	Call string `json:"call,omitempty"`
	// ConfigKey / ConfigValue parameterize a config flip.
	ConfigKey   string `json:"configKey,omitempty"`
	ConfigValue string `json:"configValue,omitempty"`
	// Kind is the regression family (regression edits only).
	Kind Kind `json:"kind,omitempty"`
}

// String renders the edit compactly for logs and reports.
func (e Edit) String() string {
	switch e.Op {
	case OpRegression:
		return fmt.Sprintf("%s(%s) %s", e.Op, e.Kind, e.Target)
	case OpRewire:
		return fmt.Sprintf("%s %s <-> %s", e.Op, e.Target, e.Other)
	case OpAPIAdd, OpAPIRemove:
		return fmt.Sprintf("%s %s %s", e.Op, e.Target, e.Call)
	case OpConfigFlip:
		return fmt.Sprintf("%s %s %s=%s", e.Op, e.Target, e.ConfigKey, e.ConfigValue)
	default:
		return fmt.Sprintf("%s %s x%.3f", e.Op, e.Target, e.Factor)
	}
}

// cloneBehavior deep-copies a behavior so edits never alias the parent
// version's (or the base app's) usage and effect slices.
func cloneBehavior(b android.Behavior) android.Behavior {
	out := b
	out.Usages = append([]android.ComponentUsage(nil), b.Usages...)
	out.Effects = append([]android.Effect(nil), b.Effects...)
	return out
}

// apply mutates (pkg, behaviors) — the working copies of one version
// under construction — according to the edit.
func (e Edit) apply(pkg *apk.Package, behaviors android.BehaviorMap, rev int) error {
	switch e.Op {
	case OpMethodTweak:
		if e.Factor <= 0 {
			return fmt.Errorf("revision: %s: factor must be positive", e)
		}
		b, ok := behaviors[e.Target]
		if !ok {
			return fmt.Errorf("revision: %s: target has no behavior", e)
		}
		b = cloneBehavior(b)
		for i := range b.Usages {
			b.Usages[i].DurationMS = scaleMS(b.Usages[i].DurationMS, e.Factor)
		}
		b.LatencyMS = scaleMS(b.LatencyMS, e.Factor)
		behaviors[e.Target] = b
		return pkg.TweakMethod(e.Target, int(e.Factor*10)-10)
	case OpAPIAdd:
		return pkg.AddCall(e.Target, e.Call)
	case OpAPIRemove:
		_, err := pkg.RemoveCall(e.Target, e.Call)
		return err
	case OpHelperEdit:
		return pkg.TweakMethod(e.Target, 7)
	case OpConfigFlip:
		b, ok := behaviors[e.Target]
		if !ok {
			return fmt.Errorf("revision: %s: target has no behavior", e)
		}
		b = cloneBehavior(b)
		found := false
		for i := range b.Effects {
			if b.Effects[i].Kind == android.EffectSetConfig && b.Effects[i].ConfigKey == e.ConfigKey {
				b.Effects[i].ConfigValue = e.ConfigValue
				found = true
			}
		}
		if !found {
			return fmt.Errorf("revision: %s: target sets no config %q", e, e.ConfigKey)
		}
		behaviors[e.Target] = b
		return pkg.TweakMethod(e.Target, 1)
	case OpRewire:
		a, okA := behaviors[e.Target]
		b, okB := behaviors[e.Other]
		if !okA || !okB {
			return fmt.Errorf("revision: %s: both widgets need behaviors", e)
		}
		behaviors[e.Target], behaviors[e.Other] = cloneBehavior(b), cloneBehavior(a)
		if err := pkg.TweakMethod(e.Target, 3); err != nil {
			return err
		}
		return pkg.TweakMethod(e.Other, -3)
	case OpRegression:
		return e.applyRegression(pkg, behaviors, rev)
	default:
		return fmt.Errorf("revision: unknown op %q", e.Op)
	}
}

// applyRegression injects the energy regression into the target
// callback's behavior, with a matching static shadow in the APK.
func (e Edit) applyRegression(pkg *apk.Package, behaviors android.BehaviorMap, rev int) error {
	b, ok := behaviors[e.Target]
	if !ok {
		return fmt.Errorf("revision: %s: target has no behavior", e)
	}
	b = cloneBehavior(b)
	name := fmt.Sprintf("rev%d-%s", rev, e.Kind)
	switch e.Kind {
	case KindHold:
		b.Effects = append(b.Effects, android.Effect{
			Kind:          android.EffectAcquire,
			Name:          name,
			HoldComponent: trace.CPU,
			HoldLevel:     0.6,
		})
		behaviors[e.Target] = b
		return pkg.AddAcquire(e.Target, name)
	case KindLoop:
		b.Effects = append(b.Effects, android.Effect{
			Kind: android.EffectStartLoop,
			Name: name,
			Loop: android.LoopSpec{
				PeriodMS: 1500,
				BurstMS:  1100,
				Usages: []android.ComponentUsage{
					{Component: trace.WiFi, Level: 0.7},
					{Component: trace.CPU, Level: 0.35},
				},
			},
		})
		behaviors[e.Target] = b
		return pkg.AddCall(e.Target, "Landroid/os/Handler;->postDelayed")
	case KindHot:
		factor := e.Factor
		if factor <= 1 {
			factor = 3
		}
		newLatency := scaleMS(b.LatencyMS, factor)
		for i := range b.Usages {
			b.Usages[i].DurationMS = scaleMS(b.Usages[i].DurationMS, factor)
			b.Usages[i].Level = min95(b.Usages[i].Level * 1.5)
		}
		// The rewrite also goes to the network on every invocation (the
		// chatty-handler shape): a large absolute power bump confined to
		// the callback's own instances.
		b.Usages = append(b.Usages, android.ComponentUsage{
			Component: trace.WiFi, Level: 0.85, DurationMS: newLatency,
		})
		b.LatencyMS = newLatency
		behaviors[e.Target] = b
		return pkg.TweakMethod(e.Target, 25)
	default:
		return fmt.Errorf("revision: unknown regression kind %q", e.Kind)
	}
}

func scaleMS(ms int64, factor float64) int64 {
	out := int64(float64(ms) * factor)
	if out < 1 {
		out = 1
	}
	return out
}

func min95(level float64) float64 {
	if level > 0.95 {
		return 0.95
	}
	return level
}

// Version is one link of a chain: the derived app plus the edits that
// produced it from its parent.
type Version struct {
	// Index is the version number (0 = the unmodified base app).
	Index int
	// App is the runnable derived app.
	App *apps.App
	// Edits were applied to the parent to obtain this version.
	Edits []Edit
}

// Derive builds a new version from a parent app by applying edits in
// order: the parent's APK is cloned, its behavior map copied, every
// edit applied, and the result reassembled (and re-validated) as an
// app. The parent is never mutated.
func Derive(parent *apps.App, revIdx int, edits []Edit) (*Version, error) {
	pkg := parent.Package().Clone()
	behaviors := parent.Behaviors(false)
	for _, e := range edits {
		if err := e.apply(pkg, behaviors, revIdx); err != nil {
			return nil, err
		}
	}
	pkg.Stamp(revIdx, label(edits))
	shell := *parent
	app, err := apps.NewCustom(&shell, pkg, behaviors)
	if err != nil {
		return nil, fmt.Errorf("revision: derive v%d: %w", revIdx, err)
	}
	return &Version{Index: revIdx, App: app, Edits: edits}, nil
}

// label summarizes an edit list for the revision metadata.
func label(edits []Edit) string {
	if len(edits) == 0 {
		return "no-op"
	}
	ops := make([]string, len(edits))
	for i, e := range edits {
		ops[i] = string(e.Op)
	}
	return fmt.Sprintf("%d edits: %v", len(edits), ops)
}

// staticKeys lists the package's methods that have no dynamic behavior
// (helpers): editing one cannot change any trace.
func staticKeys(pkg *apk.Package, behaviors android.BehaviorMap) []trace.EventKey {
	var out []trace.EventKey
	for _, k := range pkg.EventKeys() {
		if _, ok := behaviors[k]; !ok {
			out = append(out, k)
		}
	}
	return out
}

// browseWidgetKeys lists the widget callbacks normal users tap, sorted
// deterministically. These are the targets whose edits actually move
// power in a normal user's session.
func browseWidgetKeys(app *apps.App) []trace.EventKey {
	var out []trace.EventKey
	for act, widgets := range app.Widgets {
		for _, w := range widgets {
			out = append(out, trace.EventKey{Class: act, Callback: w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Callback < out[j].Callback
	})
	return out
}

// configKeys lists callbacks whose behavior writes a configuration
// value, with the key they write.
func configKeys(behaviors android.BehaviorMap) []Edit {
	var out []Edit
	for k, b := range behaviors {
		for _, eff := range b.Effects {
			if eff.Kind == android.EffectSetConfig {
				out = append(out, Edit{Op: OpConfigFlip, Target: k, ConfigKey: eff.ConfigKey})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Target.Class != out[j].Target.Class {
			return out[i].Target.Class < out[j].Target.Class
		}
		return out[i].Target.Callback < out[j].Target.Callback
	})
	return out
}

// pickBenign draws one benign edit for the app, favoring static-only
// operators so consecutive versions share most bundles.
func pickBenign(app *apps.App, rng *rand.Rand) (Edit, bool) {
	statics := staticKeys(app.Package(), app.Behaviors(false))
	widgets := browseWidgetKeys(app)
	flips := configKeys(app.Behaviors(false))
	for attempt := 0; attempt < 8; attempt++ {
		switch rng.Intn(6) {
		case 0, 1: // helper edit (static-only)
			if len(statics) == 0 {
				continue
			}
			return Edit{Op: OpHelperEdit, Target: statics[rng.Intn(len(statics))]}, true
		case 2: // api add (static-only)
			if len(widgets) == 0 {
				continue
			}
			return Edit{
				Op:     OpAPIAdd,
				Target: widgets[rng.Intn(len(widgets))],
				Call:   fmt.Sprintf("Landroid/util/Log;->d%d", rng.Intn(4)),
			}, true
		case 3: // api remove (static-only; no-op if absent)
			if len(widgets) == 0 {
				continue
			}
			return Edit{
				Op:     OpAPIRemove,
				Target: widgets[rng.Intn(len(widgets))],
				Call:   fmt.Sprintf("Landroid/util/Log;->d%d", rng.Intn(4)),
			}, true
		case 4: // small behavioral tweak on one widget
			if len(widgets) == 0 {
				continue
			}
			return Edit{
				Op:     OpMethodTweak,
				Target: widgets[rng.Intn(len(widgets))],
				Factor: 0.95 + rng.Float64()*0.1,
			}, true
		default: // benign config flip (dormant unless the trigger runs)
			if len(flips) == 0 {
				continue
			}
			e := flips[rng.Intn(len(flips))]
			e.ConfigValue = fmt.Sprintf("%d", 900*(1+rng.Intn(8)))
			return e, true
		}
	}
	return Edit{}, false
}

// pickRegression draws the chain's injected regression: a drain of the
// given kind on a main-activity widget. Sessions start on the main
// activity and tap its widgets throughout, so the culprit callback is
// reliably exercised across the corpus — a regression on a widget no
// user ever taps would be latent, and a latent edit is not a
// regression the chain's diffs could or should surface.
func pickRegression(app *apps.App, kind Kind, rng *rand.Rand) (Edit, error) {
	widgets := browseWidgetKeys(app)
	if main := app.MainActivity; main != "" {
		var onMain []trace.EventKey
		for _, w := range widgets {
			if w.Class == main {
				onMain = append(onMain, w)
			}
		}
		if len(onMain) > 0 {
			widgets = onMain
		}
	}
	if len(widgets) == 0 {
		return Edit{}, fmt.Errorf("revision: app %s has no browse widgets to regress", app.AppID)
	}
	if kind == "" {
		kinds := Kinds()
		kind = kinds[rng.Intn(len(kinds))]
	}
	return Edit{
		Op:     OpRegression,
		Target: widgets[rng.Intn(len(widgets))],
		Kind:   kind,
		Factor: 3 + rng.Float64()*2,
	}, nil
}
