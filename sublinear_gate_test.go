package repro

import (
	"os"
	"strings"
	"testing"
)

// maxSublinearExponent is the CI ceiling for the fitted growth exponent
// of the sublinear re-analysis path. The design target is ~O(log N) per
// ingest (exponent near 0 over 100..10k bundles); 0.5 leaves headroom
// for benchmark noise while still failing loudly if an O(N) cost (a
// full-table clear, an order-slice reallocation, eager dirty fan-out)
// sneaks back onto the churn path.
const maxSublinearExponent = 0.5

// minSpeedupVsIncremental is the CI floor for how much faster summary
// maintenance must be than a full report materialization at the largest
// sweep size.
const minSpeedupVsIncremental = 5.0

// TestSublinearGate re-times the corpus-size sweep and fails if the
// sublinear ingest path has regressed toward linear growth. Gated
// behind SUBLINEAR_GATE=1 because it benchmarks 10k-bundle corpora
// (roughly a minute); run it locally with:
//
//	SUBLINEAR_GATE=1 go test -run TestSublinearGate .
func TestSublinearGate(t *testing.T) {
	if os.Getenv("SUBLINEAR_GATE") == "" {
		t.Skip("set SUBLINEAR_GATE=1 to run the sublinear growth gate")
	}
	entries, fits := reanalyzeSweep(t, sweepSizes)
	for _, f := range fits {
		t.Logf("%s: sizes %v -> ns/op %v, fitted exponent %.3f", f.Name, f.Sizes, f.NsPerOp, f.Exponent)
	}
	for _, f := range fits {
		if f.Name != "reanalyze-after-add/sublinear" {
			continue
		}
		if f.Exponent > maxSublinearExponent {
			t.Errorf("sublinear re-analysis grows as N^%.3f (> %.1f): per-ingest cost is no longer ~O(log N); ns/op %v over sizes %v",
				f.Exponent, maxSublinearExponent, f.NsPerOp, f.Sizes)
		}
	}

	largest := sweepSizes[len(sweepSizes)-1]
	var sub, inc *sweepEntry
	for i := range entries {
		e := &entries[i]
		if e.CorpusSize != largest {
			continue
		}
		switch {
		case strings.Contains(e.Name, "/sublinear/"):
			sub = e
		case strings.Contains(e.Name, "/incremental/"):
			inc = e
		}
	}
	if sub == nil || inc == nil {
		t.Fatalf("sweep produced no entries at the largest size %d", largest)
	}
	if float64(inc.NsPerOp) < minSpeedupVsIncremental*float64(sub.NsPerOp) {
		t.Errorf("at %d bundles, sublinear maintenance (%d ns/op) is only %.1fx faster than full re-analysis (%d ns/op), want >= %.0fx",
			largest, sub.NsPerOp, float64(inc.NsPerOp)/float64(sub.NsPerOp), inc.NsPerOp, minSpeedupVsIncremental)
	}
}
